package baseline

import (
	"repro/internal/kernel"
	"repro/internal/sim"
)

// strideState is the per-thread state of the stride policy.
type strideState struct {
	tickets  int64
	stride   int64
	pass     int64
	runnable bool
}

// strideOne is the common numerator: stride = strideOne / tickets.
const strideOne = 1 << 20

// Stride implements stride scheduling — Waldspurger's deterministic
// counterpart to lottery scheduling. Each thread advances a virtual "pass"
// by stride = K/tickets per quantum consumed; the runnable thread with the
// lowest pass runs. Shares are proportional with far lower short-term
// variance than the lottery, but the tickets still have to be computed by
// someone — which is exactly the gap the paper's feedback controller
// closes.
type Stride struct {
	k        *kernel.Kernel
	quantum  sim.Duration
	runnable []*kernel.Thread
}

// NewStride returns a stride scheduler with the given quantum (default
// 10 ms when non-positive).
func NewStride(quantum sim.Duration) *Stride {
	if quantum <= 0 {
		quantum = 10 * sim.Millisecond
	}
	return &Stride{quantum: quantum}
}

// Name implements kernel.Policy.
func (p *Stride) Name() string { return "stride" }

// Attach implements kernel.Policy.
func (p *Stride) Attach(k *kernel.Kernel) { p.k = k }

func sstate(t *kernel.Thread) *strideState { return t.Sched.(*strideState) }

// AddThread implements kernel.Policy; threads start with 100 tickets.
func (p *Stride) AddThread(t *kernel.Thread, now sim.Time) {
	t.Sched = &strideState{tickets: 100, stride: strideOne / 100}
}

// RemoveThread implements kernel.Policy.
func (p *Stride) RemoveThread(t *kernel.Thread, now sim.Time) {}

// SetTickets assigns a thread's ticket count.
func (p *Stride) SetTickets(t *kernel.Thread, n int64) {
	if n <= 0 {
		panic("baseline: tickets must be positive")
	}
	st := sstate(t)
	st.tickets = n
	st.stride = strideOne / n
	if st.stride < 1 {
		st.stride = 1
	}
}

// Enqueue implements kernel.Policy. A waking thread's pass is brought up
// to the minimum runnable pass so sleepers cannot bank credit — the
// standard stride rejoin rule.
func (p *Stride) Enqueue(t *kernel.Thread, now sim.Time) {
	st := sstate(t)
	if st.runnable {
		return
	}
	if min, ok := p.minPass(); ok && st.pass < min {
		st.pass = min
	}
	st.runnable = true
	p.runnable = append(p.runnable, t)
}

func (p *Stride) minPass() (int64, bool) {
	if len(p.runnable) == 0 {
		return 0, false
	}
	min := sstate(p.runnable[0]).pass
	for _, t := range p.runnable[1:] {
		if pass := sstate(t).pass; pass < min {
			min = pass
		}
	}
	return min, true
}

// Dequeue implements kernel.Policy.
func (p *Stride) Dequeue(t *kernel.Thread, now sim.Time) {
	st := sstate(t)
	if !st.runnable {
		return
	}
	st.runnable = false
	for i, r := range p.runnable {
		if r == t {
			copy(p.runnable[i:], p.runnable[i+1:])
			p.runnable = p.runnable[:len(p.runnable)-1]
			return
		}
	}
}

// Pick implements kernel.Policy: lowest pass runs.
func (p *Stride) Pick(now sim.Time) *kernel.Thread {
	var best *kernel.Thread
	var bestPass int64
	for _, t := range p.runnable {
		if pass := sstate(t).pass; best == nil || pass < bestPass {
			best, bestPass = t, pass
		}
	}
	return best
}

// TimeSlice implements kernel.Policy.
func (p *Stride) TimeSlice(t *kernel.Thread, now sim.Time) sim.Duration {
	return p.quantum
}

// Charge implements kernel.Policy: advance the pass in proportion to the
// CPU actually consumed (fractional quanta advance fractionally, keeping
// the accounting exact for threads that block early).
func (p *Stride) Charge(t *kernel.Thread, ran sim.Duration, now sim.Time) bool {
	if ran <= 0 {
		return false
	}
	st := sstate(t)
	st.pass += st.stride * int64(ran) / int64(p.quantum)
	return ran >= p.quantum
}

// Tick implements kernel.Policy.
func (p *Stride) Tick(now sim.Time) bool { return false }

// WakePreempts implements kernel.Policy: a woken thread with a strictly
// lower pass preempts, which keeps latency low for blocking threads.
func (p *Stride) WakePreempts(woken, current *kernel.Thread, now sim.Time) bool {
	return sstate(woken).pass < sstate(current).pass
}
