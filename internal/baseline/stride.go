package baseline

import (
	"repro/internal/kernel"
	"repro/internal/sim"
)

// strideState is the per-thread state of the stride policy.
type strideState struct {
	tickets int64
	stride  int64
	pass    int64
	// seq preserves enqueue order for pass ties, matching the legacy
	// linear scan's first-minimum selection; heapIdx tracks the thread's
	// slot in the indexed pass heap (-1 when not runnable).
	seq      uint64
	heapIdx  int
	runnable bool
}

// strideOne is the common numerator: stride = strideOne / tickets.
const strideOne = 1 << 20

// Stride implements stride scheduling — Waldspurger's deterministic
// counterpart to lottery scheduling. Each thread advances a virtual "pass"
// by stride = K/tickets per quantum consumed; the runnable thread with the
// lowest pass runs. Shares are proportional with far lower short-term
// variance than the lottery, but the tickets still have to be computed by
// someone — which is exactly the gap the paper's feedback controller
// closes.
//
// The runnable set is an intrusive indexed min-heap on (pass, enqueue
// seq), one per CPU, so Pick and the waking thread's rejoin-at-minimum
// rule are O(1) reads and updates are O(log n) — the same large-n
// treatment as the rbs dispatcher, keeping scheduler comparisons
// apples-to-apples at scale. Passes stay globally comparable; only the
// queues shard.
type Stride struct {
	k        *kernel.Kernel
	quantum  sim.Duration
	runnable [][]*kernel.Thread
	seqGen   uint64
}

// NewStride returns a stride scheduler with the given quantum (default
// 10 ms when non-positive).
func NewStride(quantum sim.Duration) *Stride {
	if quantum <= 0 {
		quantum = 10 * sim.Millisecond
	}
	return &Stride{quantum: quantum}
}

// Name implements kernel.Policy.
func (p *Stride) Name() string { return "stride" }

// Attach implements kernel.Policy.
func (p *Stride) Attach(k *kernel.Kernel) {
	p.k = k
	p.runnable = make([][]*kernel.Thread, k.NumCPUs())
}

func sstate(t *kernel.Thread) *strideState { return t.Sched.(*strideState) }

// AddThread implements kernel.Policy; threads start with 100 tickets.
func (p *Stride) AddThread(t *kernel.Thread, now sim.Time) {
	t.Sched = &strideState{tickets: 100, stride: strideOne / 100, heapIdx: -1}
}

// RemoveThread implements kernel.Policy.
func (p *Stride) RemoveThread(t *kernel.Thread, now sim.Time) {}

// SetTickets assigns a thread's ticket count.
func (p *Stride) SetTickets(t *kernel.Thread, n int64) {
	if n <= 0 {
		panic("baseline: tickets must be positive")
	}
	st := sstate(t)
	st.tickets = n
	st.stride = strideOne / n
	if st.stride < 1 {
		st.stride = 1
	}
}

// Enqueue implements kernel.Policy. A waking thread's pass is brought up
// to the minimum runnable pass on its CPU so sleepers cannot bank credit —
// the standard stride rejoin rule, now an O(1) heap-top read.
func (p *Stride) Enqueue(t *kernel.Thread, now sim.Time) {
	st := sstate(t)
	if st.runnable {
		return
	}
	q := p.runnable[t.CPU()]
	if len(q) > 0 {
		if min := sstate(q[0]).pass; st.pass < min {
			st.pass = min
		}
	}
	st.runnable = true
	st.seq = p.seqGen
	p.seqGen++
	st.heapIdx = len(q)
	p.runnable[t.CPU()] = append(q, t)
	p.up(t.CPU(), st.heapIdx)
}

// Dequeue implements kernel.Policy.
func (p *Stride) Dequeue(t *kernel.Thread, now sim.Time) {
	st := sstate(t)
	if !st.runnable {
		return
	}
	cpu := t.CPU()
	q := p.runnable[cpu]
	st.runnable = false
	i := st.heapIdx
	st.heapIdx = -1
	last := len(q) - 1
	moved := q[last]
	q[last] = nil // clear the vacated tail slot
	p.runnable[cpu] = q[:last]
	if i == last {
		return
	}
	q[i] = moved
	sstate(moved).heapIdx = i
	if !p.down(cpu, i) {
		p.up(cpu, i)
	}
}

// less orders the pass heap; the seq tie-break reproduces the legacy
// scan's FIFO-among-equal-passes choice.
func (p *Stride) less(a, b *kernel.Thread) bool {
	sa, sb := sstate(a), sstate(b)
	if sa.pass != sb.pass {
		return sa.pass < sb.pass
	}
	return sa.seq < sb.seq
}

func (p *Stride) up(cpu, i int) {
	q := p.runnable[cpu]
	t := q[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !p.less(t, q[parent]) {
			break
		}
		q[i] = q[parent]
		sstate(q[i]).heapIdx = i
		i = parent
	}
	q[i] = t
	sstate(t).heapIdx = i
}

func (p *Stride) down(cpu, i int) bool {
	q := p.runnable[cpu]
	t := q[i]
	n := len(q)
	moved := false
	for {
		kid := 2*i + 1
		if kid >= n {
			break
		}
		if r := kid + 1; r < n && p.less(q[r], q[kid]) {
			kid = r
		}
		if !p.less(q[kid], t) {
			break
		}
		q[i] = q[kid]
		sstate(q[i]).heapIdx = i
		i = kid
		moved = true
	}
	q[i] = t
	sstate(t).heapIdx = i
	return moved
}

// Pick implements kernel.Policy: lowest pass on the CPU runs — its heap
// top.
func (p *Stride) Pick(cpu int, now sim.Time) *kernel.Thread {
	q := p.runnable[cpu]
	if len(q) == 0 {
		return nil
	}
	return q[0]
}

// Steal implements kernel.Policy: hand over a migratable thread from the
// victim's pass heap, scanned in index order — the heap top (lowest pass)
// is preferred when movable; past it the order is the heap's layout, not
// pass order.
func (p *Stride) Steal(from int, now sim.Time) *kernel.Thread {
	if t := kernel.StealCandidate(p.runnable[from], p.k.CurrentOn(from)); t != nil {
		p.Dequeue(t, now)
		return t
	}
	return nil
}

// TimeSlice implements kernel.Policy.
func (p *Stride) TimeSlice(t *kernel.Thread, now sim.Time) sim.Duration {
	return p.quantum
}

// Charge implements kernel.Policy: advance the pass in proportion to the
// CPU actually consumed (fractional quanta advance fractionally, keeping
// the accounting exact for threads that block early).
func (p *Stride) Charge(t *kernel.Thread, cpu int, ran sim.Duration, now sim.Time) bool {
	if ran <= 0 {
		return false
	}
	st := sstate(t)
	st.pass += st.stride * int64(ran) / int64(p.quantum)
	if st.heapIdx >= 0 {
		p.down(t.CPU(), st.heapIdx) // pass only ever grows here
	}
	return ran >= p.quantum
}

// Tick implements kernel.Policy.
func (p *Stride) Tick(cpu int, now sim.Time) bool { return false }

// WakePreempts implements kernel.Policy: a woken thread with a strictly
// lower pass preempts, which keeps latency low for blocking threads.
func (p *Stride) WakePreempts(woken, current *kernel.Thread, now sim.Time) bool {
	return sstate(woken).pass < sstate(current).pass
}
