package baseline

import (
	"repro/internal/kernel"
	"repro/internal/sim"
)

// strideState is the per-thread state of the stride policy.
type strideState struct {
	tickets int64
	stride  int64
	pass    int64
	// seq preserves enqueue order for pass ties, matching the legacy
	// linear scan's first-minimum selection; heapIdx tracks the thread's
	// slot in the indexed pass heap (-1 when not runnable).
	seq      uint64
	heapIdx  int
	runnable bool
}

// strideOne is the common numerator: stride = strideOne / tickets.
const strideOne = 1 << 20

// Stride implements stride scheduling — Waldspurger's deterministic
// counterpart to lottery scheduling. Each thread advances a virtual "pass"
// by stride = K/tickets per quantum consumed; the runnable thread with the
// lowest pass runs. Shares are proportional with far lower short-term
// variance than the lottery, but the tickets still have to be computed by
// someone — which is exactly the gap the paper's feedback controller
// closes.
//
// The runnable set is an intrusive indexed min-heap on (pass, enqueue
// seq), so Pick and the waking thread's rejoin-at-minimum rule are O(1)
// reads and updates are O(log n) — the same large-n treatment as the rbs
// dispatcher, keeping scheduler comparisons apples-to-apples at scale.
type Stride struct {
	k        *kernel.Kernel
	quantum  sim.Duration
	runnable []*kernel.Thread
	seqGen   uint64
}

// NewStride returns a stride scheduler with the given quantum (default
// 10 ms when non-positive).
func NewStride(quantum sim.Duration) *Stride {
	if quantum <= 0 {
		quantum = 10 * sim.Millisecond
	}
	return &Stride{quantum: quantum}
}

// Name implements kernel.Policy.
func (p *Stride) Name() string { return "stride" }

// Attach implements kernel.Policy.
func (p *Stride) Attach(k *kernel.Kernel) { p.k = k }

func sstate(t *kernel.Thread) *strideState { return t.Sched.(*strideState) }

// AddThread implements kernel.Policy; threads start with 100 tickets.
func (p *Stride) AddThread(t *kernel.Thread, now sim.Time) {
	t.Sched = &strideState{tickets: 100, stride: strideOne / 100, heapIdx: -1}
}

// RemoveThread implements kernel.Policy.
func (p *Stride) RemoveThread(t *kernel.Thread, now sim.Time) {}

// SetTickets assigns a thread's ticket count.
func (p *Stride) SetTickets(t *kernel.Thread, n int64) {
	if n <= 0 {
		panic("baseline: tickets must be positive")
	}
	st := sstate(t)
	st.tickets = n
	st.stride = strideOne / n
	if st.stride < 1 {
		st.stride = 1
	}
}

// Enqueue implements kernel.Policy. A waking thread's pass is brought up
// to the minimum runnable pass so sleepers cannot bank credit — the
// standard stride rejoin rule, now an O(1) heap-top read.
func (p *Stride) Enqueue(t *kernel.Thread, now sim.Time) {
	st := sstate(t)
	if st.runnable {
		return
	}
	if len(p.runnable) > 0 {
		if min := sstate(p.runnable[0]).pass; st.pass < min {
			st.pass = min
		}
	}
	st.runnable = true
	st.seq = p.seqGen
	p.seqGen++
	st.heapIdx = len(p.runnable)
	p.runnable = append(p.runnable, t)
	p.up(st.heapIdx)
}

// Dequeue implements kernel.Policy.
func (p *Stride) Dequeue(t *kernel.Thread, now sim.Time) {
	st := sstate(t)
	if !st.runnable {
		return
	}
	st.runnable = false
	i := st.heapIdx
	st.heapIdx = -1
	last := len(p.runnable) - 1
	moved := p.runnable[last]
	p.runnable[last] = nil // clear the vacated tail slot
	p.runnable = p.runnable[:last]
	if i == last {
		return
	}
	p.runnable[i] = moved
	sstate(moved).heapIdx = i
	if !p.down(i) {
		p.up(i)
	}
}

// less orders the pass heap; the seq tie-break reproduces the legacy
// scan's FIFO-among-equal-passes choice.
func (p *Stride) less(a, b *kernel.Thread) bool {
	sa, sb := sstate(a), sstate(b)
	if sa.pass != sb.pass {
		return sa.pass < sb.pass
	}
	return sa.seq < sb.seq
}

func (p *Stride) up(i int) {
	t := p.runnable[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !p.less(t, p.runnable[parent]) {
			break
		}
		p.runnable[i] = p.runnable[parent]
		sstate(p.runnable[i]).heapIdx = i
		i = parent
	}
	p.runnable[i] = t
	sstate(t).heapIdx = i
}

func (p *Stride) down(i int) bool {
	t := p.runnable[i]
	n := len(p.runnable)
	moved := false
	for {
		kid := 2*i + 1
		if kid >= n {
			break
		}
		if r := kid + 1; r < n && p.less(p.runnable[r], p.runnable[kid]) {
			kid = r
		}
		if !p.less(p.runnable[kid], t) {
			break
		}
		p.runnable[i] = p.runnable[kid]
		sstate(p.runnable[i]).heapIdx = i
		i = kid
		moved = true
	}
	p.runnable[i] = t
	sstate(t).heapIdx = i
	return moved
}

// Pick implements kernel.Policy: lowest pass runs — the heap top.
func (p *Stride) Pick(now sim.Time) *kernel.Thread {
	if len(p.runnable) == 0 {
		return nil
	}
	return p.runnable[0]
}

// TimeSlice implements kernel.Policy.
func (p *Stride) TimeSlice(t *kernel.Thread, now sim.Time) sim.Duration {
	return p.quantum
}

// Charge implements kernel.Policy: advance the pass in proportion to the
// CPU actually consumed (fractional quanta advance fractionally, keeping
// the accounting exact for threads that block early).
func (p *Stride) Charge(t *kernel.Thread, ran sim.Duration, now sim.Time) bool {
	if ran <= 0 {
		return false
	}
	st := sstate(t)
	st.pass += st.stride * int64(ran) / int64(p.quantum)
	if st.heapIdx >= 0 {
		p.down(st.heapIdx) // pass only ever grows here
	}
	return ran >= p.quantum
}

// Tick implements kernel.Policy.
func (p *Stride) Tick(now sim.Time) bool { return false }

// WakePreempts implements kernel.Policy: a woken thread with a strictly
// lower pass preempts, which keeps latency low for blocking threads.
func (p *Stride) WakePreempts(woken, current *kernel.Thread, now sim.Time) bool {
	return sstate(woken).pass < sstate(current).pass
}
