package baseline_test

import (
	"testing"

	"repro/internal/baseline"
	"repro/internal/kernel"
	"repro/internal/sim"
)

func hog(burst sim.Cycles) kernel.Program {
	return kernel.ProgramFunc(func(t *kernel.Thread, now sim.Time) kernel.Op {
		return kernel.OpCompute{Cycles: burst}
	})
}

func TestRoundRobinEqualSplitThreeWays(t *testing.T) {
	eng := sim.NewEngine()
	k := kernel.New(eng, kernel.DefaultConfig(), baseline.NewRoundRobin(5*sim.Millisecond))
	var ths []*kernel.Thread
	for i := 0; i < 3; i++ {
		ths = append(ths, k.Spawn("h", hog(400_000)))
	}
	k.Start()
	eng.RunFor(3 * sim.Second)
	k.Stop()
	for i, th := range ths {
		s := th.CPUTime().Seconds()
		if s < 0.85 || s > 1.15 {
			t.Fatalf("thread %d got %.3fs of 3s, want ≈1s", i, s)
		}
	}
}

func TestRoundRobinDefaultQuantum(t *testing.T) {
	p := baseline.NewRoundRobin(0)
	eng := sim.NewEngine()
	k := kernel.New(eng, kernel.DefaultConfig(), p)
	k.Spawn("a", hog(400_000))
	b := k.Spawn("b", hog(400_000))
	k.Start()
	eng.RunFor(sim.Second)
	k.Stop()
	if b.CPUTime() < 400*sim.Millisecond {
		t.Fatalf("default quantum starved second thread: %v", b.CPUTime())
	}
}

func TestLinuxEpochRecalculation(t *testing.T) {
	// Two equal time-sharing hogs must alternate across epochs and end up
	// with close to equal CPU.
	eng := sim.NewEngine()
	lp := baseline.NewLinux()
	k := kernel.New(eng, kernel.DefaultConfig(), lp)
	a := k.Spawn("a", hog(400_000))
	b := k.Spawn("b", hog(400_000))
	k.Start()
	eng.RunFor(4 * sim.Second)
	k.Stop()
	ra, rb := a.CPUTime().Seconds(), b.CPUTime().Seconds()
	if ra/rb < 0.8 || ra/rb > 1.25 {
		t.Fatalf("goodness scheduler unfair: %.2f vs %.2f", ra, rb)
	}
}

func TestLinuxNiceMonotone(t *testing.T) {
	// More nice (lower priority) must mean less CPU, monotonically.
	shares := make([]float64, 0, 3)
	for _, nice := range []int{0, 10, 19} {
		eng := sim.NewEngine()
		lp := baseline.NewLinux()
		k := kernel.New(eng, kernel.DefaultConfig(), lp)
		ref := k.Spawn("ref", hog(400_000))
		niced := k.Spawn("niced", hog(400_000))
		lp.SetNice(niced, nice)
		k.Start()
		eng.RunFor(4 * sim.Second)
		k.Stop()
		_ = ref
		shares = append(shares, niced.CPUTime().Seconds())
	}
	if !(shares[0] > shares[1] && shares[1] > shares[2]) {
		t.Fatalf("nice not monotone: %v", shares)
	}
}

func TestLinuxNiceClamped(t *testing.T) {
	eng := sim.NewEngine()
	lp := baseline.NewLinux()
	k := kernel.New(eng, kernel.DefaultConfig(), lp)
	th := k.Spawn("x", hog(1000))
	lp.SetNice(th, 100)  // clamps to 19
	lp.SetNice(th, -100) // clamps to -20
}

func TestLinuxRealtimeBeatsRealtimeByPriority(t *testing.T) {
	eng := sim.NewEngine()
	lp := baseline.NewLinux()
	k := kernel.New(eng, kernel.DefaultConfig(), lp)
	hi := k.Spawn("hi", hog(400_000))
	lo := k.Spawn("lo", hog(400_000))
	lp.SetRealtime(hi, 50)
	lp.SetRealtime(lo, 10)
	k.Start()
	eng.RunFor(sim.Second)
	k.Stop()
	if lo.CPUTime() > 10*sim.Millisecond {
		t.Fatalf("lower RT priority ran %v against a spinning higher one", lo.CPUTime())
	}
}

func TestLinuxRealtimeYieldsWhenBlocked(t *testing.T) {
	// An RT thread that sleeps lets time-sharing threads run in the gaps.
	eng := sim.NewEngine()
	lp := baseline.NewLinux()
	k := kernel.New(eng, kernel.DefaultConfig(), lp)
	phase := 0
	rt := k.Spawn("rt", kernel.ProgramFunc(func(th *kernel.Thread, now sim.Time) kernel.Op {
		phase++
		if phase%2 == 1 {
			return kernel.OpCompute{Cycles: 400_000} // 1ms
		}
		return kernel.OpSleep{D: 9 * sim.Millisecond}
	}))
	lp.SetRealtime(rt, 50)
	ts := k.Spawn("ts", hog(400_000))
	k.Start()
	eng.RunFor(2 * sim.Second)
	k.Stop()
	if ts.CPUTime() < 1500*sim.Millisecond {
		t.Fatalf("time-sharing thread got %v, want ≈1.8s of the gaps", ts.CPUTime())
	}
	if rt.CPUTime() < 150*sim.Millisecond {
		t.Fatalf("rt thread got %v, want ≈200ms", rt.CPUTime())
	}
}

func TestLinuxInteractivePreemptsOnWake(t *testing.T) {
	eng := sim.NewEngine()
	lp := baseline.NewLinux()
	k := kernel.New(eng, kernel.DefaultConfig(), lp)
	k.Spawn("hog", hog(10_000_000)) // long bursts: preemption must cut in
	woke := 0
	phase := 0
	inter := k.Spawn("inter", kernel.ProgramFunc(func(th *kernel.Thread, now sim.Time) kernel.Op {
		phase++
		if phase%2 == 1 {
			return kernel.OpSleep{D: 50 * sim.Millisecond}
		}
		woke++
		return kernel.OpCompute{Cycles: 40_000}
	}))
	_ = inter
	k.Start()
	eng.RunFor(2 * sim.Second)
	k.Stop()
	// ≈40 wake opportunities in 2s; the sleeper must get most of them
	// despite the hog's 25ms bursts.
	if woke < 30 {
		t.Fatalf("interactive thread woke %d times, want ≈40", woke)
	}
}

func TestLinuxRunnableCount(t *testing.T) {
	eng := sim.NewEngine()
	lp := baseline.NewLinux()
	k := kernel.New(eng, kernel.DefaultConfig(), lp)
	k.Spawn("a", hog(400_000))
	k.Spawn("b", hog(400_000))
	if lp.Runnable() != 2 {
		t.Fatalf("runnable = %d before start", lp.Runnable())
	}
	k.Start()
	eng.RunFor(100 * sim.Millisecond)
	k.Stop()
	if lp.Runnable() != 2 {
		t.Fatalf("runnable = %d with two hogs", lp.Runnable())
	}
}
