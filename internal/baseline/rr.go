// Package baseline implements the comparator scheduling policies the paper
// argues against: a plain round-robin scheduler and a Linux 2.0-style
// goodness scheduler with multilevel-feedback decay, nice values, and a
// fixed real-time priority class. The motivation experiments (§2: Mars
// Pathfinder priority inversion, spin-wait livelock, starvation) run on
// these policies; the paper's own scheduler lives in internal/rbs.
package baseline

import (
	"repro/internal/kernel"
	"repro/internal/sim"
)

// RoundRobin is the simplest possible policy: runnable threads take equal
// fixed quanta in FIFO order. It is useful as a neutral substrate in tests
// and as the degenerate "no information" comparator.
type RoundRobin struct {
	k        *kernel.Kernel
	quantum  sim.Duration
	runnable []*kernel.Thread
	used     map[*kernel.Thread]sim.Duration
}

// NewRoundRobin returns a round-robin policy with the given quantum. A
// non-positive quantum defaults to 10ms.
func NewRoundRobin(quantum sim.Duration) *RoundRobin {
	if quantum <= 0 {
		quantum = 10 * sim.Millisecond
	}
	return &RoundRobin{quantum: quantum, used: make(map[*kernel.Thread]sim.Duration)}
}

// Name implements kernel.Policy.
func (p *RoundRobin) Name() string { return "round-robin" }

// Attach implements kernel.Policy.
func (p *RoundRobin) Attach(k *kernel.Kernel) { p.k = k }

// AddThread implements kernel.Policy.
func (p *RoundRobin) AddThread(t *kernel.Thread, now sim.Time) {}

// RemoveThread implements kernel.Policy.
func (p *RoundRobin) RemoveThread(t *kernel.Thread, now sim.Time) {
	delete(p.used, t)
}

// Enqueue implements kernel.Policy.
func (p *RoundRobin) Enqueue(t *kernel.Thread, now sim.Time) {
	for _, r := range p.runnable {
		if r == t {
			return
		}
	}
	p.runnable = append(p.runnable, t)
}

// Dequeue implements kernel.Policy.
func (p *RoundRobin) Dequeue(t *kernel.Thread, now sim.Time) {
	for i, r := range p.runnable {
		if r == t {
			copy(p.runnable[i:], p.runnable[i+1:])
			p.runnable[len(p.runnable)-1] = nil // clear the vacated tail slot
			p.runnable = p.runnable[:len(p.runnable)-1]
			return
		}
	}
}

// Pick implements kernel.Policy: the front of the FIFO runs.
func (p *RoundRobin) Pick(now sim.Time) *kernel.Thread {
	if len(p.runnable) == 0 {
		return nil
	}
	return p.runnable[0]
}

// TimeSlice implements kernel.Policy.
func (p *RoundRobin) TimeSlice(t *kernel.Thread, now sim.Time) sim.Duration {
	rem := p.quantum - p.used[t]
	if rem < 0 {
		rem = 0
	}
	return rem
}

// Charge implements kernel.Policy: quantum exhaustion rotates the thread to
// the back of the queue.
func (p *RoundRobin) Charge(t *kernel.Thread, ran sim.Duration, now sim.Time) bool {
	p.used[t] += ran
	if p.used[t] >= p.quantum {
		p.used[t] = 0
		p.rotate(t)
		return true
	}
	return false
}

func (p *RoundRobin) rotate(t *kernel.Thread) {
	if len(p.runnable) > 1 && p.runnable[0] == t {
		copy(p.runnable, p.runnable[1:])
		p.runnable[len(p.runnable)-1] = t
	}
}

// Tick implements kernel.Policy.
func (p *RoundRobin) Tick(now sim.Time) bool { return false }

// WakePreempts implements kernel.Policy: wakeups never preempt.
func (p *RoundRobin) WakePreempts(woken, current *kernel.Thread, now sim.Time) bool {
	return false
}
