// Package baseline implements the comparator scheduling policies the paper
// argues against: a plain round-robin scheduler and a Linux 2.0-style
// goodness scheduler with multilevel-feedback decay, nice values, and a
// fixed real-time priority class. The motivation experiments (§2: Mars
// Pathfinder priority inversion, spin-wait livelock, starvation) run on
// these policies; the paper's own scheduler lives in internal/rbs.
//
// On a multi-CPU machine every baseline keeps one runnable structure per
// CPU, keyed by kernel.Thread.CPU(), and supports work-pull migration via
// Steal — the minimal per-CPU treatment: global share state (tickets,
// counters, passes) with per-CPU dispatch queues.
package baseline

import (
	"repro/internal/kernel"
	"repro/internal/sim"
)

// RoundRobin is the simplest possible policy: runnable threads take equal
// fixed quanta in FIFO order, one FIFO per CPU.
type RoundRobin struct {
	k        *kernel.Kernel
	quantum  sim.Duration
	runnable [][]*kernel.Thread
	used     map[*kernel.Thread]sim.Duration
}

// NewRoundRobin returns a round-robin policy with the given quantum. A
// non-positive quantum defaults to 10ms.
func NewRoundRobin(quantum sim.Duration) *RoundRobin {
	if quantum <= 0 {
		quantum = 10 * sim.Millisecond
	}
	return &RoundRobin{quantum: quantum, used: make(map[*kernel.Thread]sim.Duration)}
}

// Name implements kernel.Policy.
func (p *RoundRobin) Name() string { return "round-robin" }

// Attach implements kernel.Policy.
func (p *RoundRobin) Attach(k *kernel.Kernel) {
	p.k = k
	p.runnable = make([][]*kernel.Thread, k.NumCPUs())
}

// AddThread implements kernel.Policy.
func (p *RoundRobin) AddThread(t *kernel.Thread, now sim.Time) {}

// RemoveThread implements kernel.Policy.
func (p *RoundRobin) RemoveThread(t *kernel.Thread, now sim.Time) {
	delete(p.used, t)
}

// Enqueue implements kernel.Policy.
func (p *RoundRobin) Enqueue(t *kernel.Thread, now sim.Time) {
	q := p.runnable[t.CPU()]
	for _, r := range q {
		if r == t {
			return
		}
	}
	p.runnable[t.CPU()] = append(q, t)
}

// Dequeue implements kernel.Policy.
func (p *RoundRobin) Dequeue(t *kernel.Thread, now sim.Time) {
	q := p.runnable[t.CPU()]
	for i, r := range q {
		if r == t {
			copy(q[i:], q[i+1:])
			q[len(q)-1] = nil // clear the vacated tail slot
			p.runnable[t.CPU()] = q[:len(q)-1]
			return
		}
	}
}

// Pick implements kernel.Policy: the front of the CPU's FIFO runs.
func (p *RoundRobin) Pick(cpu int, now sim.Time) *kernel.Thread {
	q := p.runnable[cpu]
	if len(q) == 0 {
		return nil
	}
	return q[0]
}

// Steal implements kernel.Policy: hand over the first migratable thread in
// the victim's FIFO.
func (p *RoundRobin) Steal(from int, now sim.Time) *kernel.Thread {
	if t := kernel.StealCandidate(p.runnable[from], p.k.CurrentOn(from)); t != nil {
		p.Dequeue(t, now)
		return t
	}
	return nil
}

// TimeSlice implements kernel.Policy.
func (p *RoundRobin) TimeSlice(t *kernel.Thread, now sim.Time) sim.Duration {
	rem := p.quantum - p.used[t]
	if rem < 0 {
		rem = 0
	}
	return rem
}

// Charge implements kernel.Policy: quantum exhaustion rotates the thread to
// the back of its CPU's queue.
func (p *RoundRobin) Charge(t *kernel.Thread, cpu int, ran sim.Duration, now sim.Time) bool {
	p.used[t] += ran
	if p.used[t] >= p.quantum {
		p.used[t] = 0
		p.rotate(t)
		return true
	}
	return false
}

func (p *RoundRobin) rotate(t *kernel.Thread) {
	q := p.runnable[t.CPU()]
	if len(q) > 1 && q[0] == t {
		copy(q, q[1:])
		q[len(q)-1] = t
	}
}

// Tick implements kernel.Policy.
func (p *RoundRobin) Tick(cpu int, now sim.Time) bool { return false }

// WakePreempts implements kernel.Policy: wakeups never preempt.
func (p *RoundRobin) WakePreempts(woken, current *kernel.Thread, now sim.Time) bool {
	return false
}
