package progress_test

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/baseline"
	"repro/internal/kernel"
	"repro/internal/progress"
	"repro/internal/sim"
)

func newQueue(size int64) (*kernel.Kernel, *kernel.Queue, *kernel.Thread) {
	eng := sim.NewEngine()
	k := kernel.New(eng, kernel.DefaultConfig(), baseline.NewRoundRobin(0))
	q := k.NewQueue("q", size)
	filler := k.Spawn("filler", kernel.ProgramFunc(func(t *kernel.Thread, now sim.Time) kernel.Op {
		return kernel.OpExit{}
	}))
	return k, q, filler
}

// fillTo drives the queue to an exact fill level via direct produce ops.
func fillTo(t *testing.T, k *kernel.Kernel, q *kernel.Queue, filler *kernel.Thread, bytes int64) {
	t.Helper()
	phase := 0
	prog := kernel.ProgramFunc(func(th *kernel.Thread, now sim.Time) kernel.Op {
		phase++
		if phase == 1 && bytes > 0 {
			return kernel.OpProduce{Queue: q, Bytes: bytes}
		}
		return kernel.OpExit{}
	})
	th := k.Spawn("fill", prog)
	k.Start()
	k.Engine().RunFor(10 * sim.Millisecond)
	k.Stop()
	if th.State() != kernel.StateExited {
		t.Fatalf("fill helper did not complete (state %v)", th.State())
	}
}

func TestQueueMetricSignConvention(t *testing.T) {
	k, q, filler := newQueue(1000)
	fillTo(t, k, q, filler, 750) // 3/4 full
	now := k.Now()

	cons := progress.QueueMetric{Queue: q, Role: progress.Consumer}
	prod := progress.QueueMetric{Queue: q, Role: progress.Producer}

	// Full-ish queue: consumer behind (positive), producer ahead (negative).
	if p := cons.Pressure(now); math.Abs(p-0.25) > 1e-9 {
		t.Fatalf("consumer pressure at 75%% fill = %v, want +0.25", p)
	}
	if p := prod.Pressure(now); math.Abs(p+0.25) > 1e-9 {
		t.Fatalf("producer pressure at 75%% fill = %v, want -0.25", p)
	}
}

func TestQueueMetricHalfFullIsZero(t *testing.T) {
	k, q, filler := newQueue(1000)
	fillTo(t, k, q, filler, 500)
	now := k.Now()
	cons := progress.QueueMetric{Queue: q, Role: progress.Consumer}
	if p := cons.Pressure(now); p != 0 {
		t.Fatalf("pressure at half full = %v, want 0 (the optimal fill level)", p)
	}
}

func TestQueueMetricBounds(t *testing.T) {
	// Empty queue.
	k, q, _ := newQueue(1000)
	now := k.Now()
	cons := progress.QueueMetric{Queue: q, Role: progress.Consumer}
	prod := progress.QueueMetric{Queue: q, Role: progress.Producer}
	if p := cons.Pressure(now); p != -0.5 {
		t.Fatalf("consumer pressure on empty queue = %v, want -0.5", p)
	}
	if p := prod.Pressure(now); p != 0.5 {
		t.Fatalf("producer pressure on empty queue = %v, want +0.5", p)
	}
}

func TestRoleSign(t *testing.T) {
	if progress.Producer.Sign() != -1 || progress.Consumer.Sign() != 1 {
		t.Fatal("role signs do not match Figure 3's R")
	}
	if progress.Producer.String() != "producer" || progress.Consumer.String() != "consumer" {
		t.Fatal("role names wrong")
	}
}

func TestRegistrySummedPressurePipelineStage(t *testing.T) {
	// A middle pipeline stage consumes queue A (25% full) and produces
	// queue B (25% full): pressures -0.25 (consumer of A... wait) —
	// consumer of A at 25% fill: F=-0.25, R=+1 → -0.25 (running ahead,
	// little input); producer of B at 25% fill: F=-0.25, R=-1 → +0.25
	// (output is draining, should speed up). Net zero.
	eng := sim.NewEngine()
	k := kernel.New(eng, kernel.DefaultConfig(), baseline.NewRoundRobin(0))
	qa := k.NewQueue("a", 1000)
	qb := k.NewQueue("b", 1000)
	phase := 0
	th := k.Spawn("stage", kernel.ProgramFunc(func(tt *kernel.Thread, now sim.Time) kernel.Op {
		phase++
		switch phase {
		case 1:
			return kernel.OpProduce{Queue: qa, Bytes: 250}
		case 2:
			return kernel.OpProduce{Queue: qb, Bytes: 250}
		}
		return kernel.OpExit{}
	}))
	k.Start()
	eng.RunFor(10 * sim.Millisecond)
	k.Stop()

	reg := progress.NewRegistry()
	reg.RegisterQueue(th, qa, progress.Consumer)
	reg.RegisterQueue(th, qb, progress.Producer)
	if !reg.HasMetrics(th) {
		t.Fatal("HasMetrics = false after registration")
	}
	if got := reg.SummedPressure(th, k.Now()); math.Abs(got) > 1e-9 {
		t.Fatalf("balanced pipeline stage pressure = %v, want 0", got)
	}
}

func TestRegistrySummedPressureClamped(t *testing.T) {
	// Three empty output queues: raw sum +1.5 must clamp to +0.5.
	eng := sim.NewEngine()
	k := kernel.New(eng, kernel.DefaultConfig(), baseline.NewRoundRobin(0))
	th := k.Spawn("t", kernel.ProgramFunc(func(tt *kernel.Thread, now sim.Time) kernel.Op {
		return kernel.OpExit{}
	}))
	reg := progress.NewRegistry()
	for i := 0; i < 3; i++ {
		q := k.NewQueue("out", 100)
		reg.RegisterQueue(th, q, progress.Producer)
	}
	if got := reg.SummedPressure(th, k.Now()); got != 0.5 {
		t.Fatalf("clamped pressure = %v, want 0.5", got)
	}
}

func TestRegistryUnregister(t *testing.T) {
	eng := sim.NewEngine()
	k := kernel.New(eng, kernel.DefaultConfig(), baseline.NewRoundRobin(0))
	th := k.Spawn("t", kernel.ProgramFunc(func(tt *kernel.Thread, now sim.Time) kernel.Op {
		return kernel.OpExit{}
	}))
	q := k.NewQueue("q", 100)
	reg := progress.NewRegistry()
	reg.RegisterQueue(th, q, progress.Consumer)
	reg.Unregister(th)
	if reg.HasMetrics(th) {
		t.Fatal("metrics survived Unregister")
	}
	if p := reg.SummedPressure(th, k.Now()); p != 0 {
		t.Fatalf("pressure after unregister = %v", p)
	}
}

func TestVirtualQueueTracksTargetRate(t *testing.T) {
	v := progress.NewVirtualQueue("pi", 100, 1000) // drain 1000 units/s
	t0 := sim.Time(0)
	// Produce exactly at the target rate: fill stays near half, pressure ≈0.
	for i := 1; i <= 100; i++ {
		now := t0.Add(sim.Duration(i) * 10 * sim.Millisecond)
		v.Complete(now, 10) // 10 units per 10ms = 1000/s
	}
	now := t0.Add(sim.Duration(1) * sim.Second)
	if p := v.Pressure(now); math.Abs(p) > 0.06 {
		t.Fatalf("on-rate virtual pressure = %v, want ≈0", p)
	}
}

func TestVirtualQueueFallingBehind(t *testing.T) {
	v := progress.NewVirtualQueue("keys", 100, 1000)
	// No completions for 100ms: 100 units drained, fill 50 -> 0.
	now := sim.Time(100 * sim.Millisecond)
	if p := v.Pressure(now); p != 0.5 {
		t.Fatalf("starved virtual pressure = %v, want +0.5 (needs CPU)", p)
	}
}

func TestVirtualQueueRunningAhead(t *testing.T) {
	v := progress.NewVirtualQueue("keys", 100, 1000)
	v.Complete(sim.Time(sim.Millisecond), 1000) // burst far past the rate
	if p := v.Pressure(sim.Time(2 * sim.Millisecond)); p >= 0 {
		t.Fatalf("ahead-of-rate virtual pressure = %v, want negative", p)
	}
}

func TestVirtualQueueFillBounds(t *testing.T) {
	v := progress.NewVirtualQueue("b", 10, 100)
	v.Complete(sim.Time(sim.Millisecond), 1e9)
	if f := v.FillLevel(sim.Time(2 * sim.Millisecond)); f > 1 {
		t.Fatalf("fill level %v > 1", f)
	}
	if f := v.FillLevel(sim.Time(10 * sim.Second)); f < 0 {
		t.Fatalf("fill level %v < 0", f)
	}
}

// Property: for any fill level, consumer and producer pressures are exact
// negations and both lie in [-1/2, +1/2] — Figure 3's R and F invariants.
func TestPropertyPressureAntisymmetricAndBounded(t *testing.T) {
	f := func(fillPct uint8) bool {
		size := int64(1000)
		fill := int64(fillPct) % 1001
		eng := sim.NewEngine()
		k := kernel.New(eng, kernel.DefaultConfig(), baseline.NewRoundRobin(0))
		q := k.NewQueue("q", size)
		phase := 0
		k.Spawn("f", kernel.ProgramFunc(func(tt *kernel.Thread, now sim.Time) kernel.Op {
			phase++
			if phase == 1 && fill > 0 {
				return kernel.OpProduce{Queue: q, Bytes: fill}
			}
			return kernel.OpExit{}
		}))
		k.Start()
		eng.RunFor(10 * sim.Millisecond)
		k.Stop()
		now := k.Now()
		pc := progress.QueueMetric{Queue: q, Role: progress.Consumer}.Pressure(now)
		pp := progress.QueueMetric{Queue: q, Role: progress.Producer}.Pressure(now)
		return math.Abs(pc+pp) < 1e-12 && pc >= -0.5 && pc <= 0.5 && pp >= -0.5 && pp <= 0.5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
