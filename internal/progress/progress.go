// Package progress implements the paper's symbiotic interfaces (§3.2): the
// linkage that exposes application progress to the scheduler. A bounded
// buffer registers its fill level, size, and each endpoint's role; the
// controller samples the registry each control interval and computes the
// progress pressure of Figure 3:
//
//	Q_t = G( Σ_i R_{t,i} · F_{t,i} )
//
// where F = fill/size − ½ ∈ [−½, ½] and R flips the sign for producers.
// This package computes the inner sum; the PID filter G lives in the
// controller.
package progress

import (
	"fmt"

	"repro/internal/kernel"
	"repro/internal/sim"
)

// Role says which side of a bounded buffer a thread is on.
type Role int

// Roles.
const (
	// Producer threads fill the queue; a full queue means they are running
	// ahead (negative pressure).
	Producer Role = iota
	// Consumer threads drain the queue; a full queue means they are
	// falling behind (positive pressure).
	Consumer
)

func (r Role) String() string {
	if r == Producer {
		return "producer"
	}
	return "consumer"
}

// Sign returns the paper's R: −1 for producers, +1 for consumers.
func (r Role) Sign() float64 {
	if r == Producer {
		return -1
	}
	return 1
}

// Metric yields one progress-pressure sample for a thread. Pressure is
// R·F ∈ [−½, ½]: positive means the thread is falling behind and needs more
// CPU; negative means it is running ahead.
type Metric interface {
	// Pressure samples the metric at the given instant.
	Pressure(now sim.Time) float64
	// Describe identifies the metric for traces.
	Describe() string
}

// Watchable is the optional push half of a Metric: a metric that can
// announce when its underlying signal moved. The event-driven control
// plane watches every watchable metric a job registers and skips
// re-sampling jobs whose signals are quiet; metrics without Watch are
// covered by the staleness bound instead.
type Watchable interface {
	// Watch registers fn to be called whenever the metric's signal changes.
	Watch(fn func())
}

// QueueMetric is the canonical symbiotic interface: a kernel bounded buffer
// plus the registering thread's role. "By exposing the fill-level, size,
// and role of the application (producer or consumer), the scheduler can
// determine the relative rate of progress of the application."
type QueueMetric struct {
	Queue *kernel.Queue
	Role  Role
}

// Pressure implements Metric: R · (fill/size − ½).
func (m QueueMetric) Pressure(now sim.Time) float64 {
	f := m.Queue.FillLevel() - 0.5
	return m.Role.Sign() * f
}

// Describe implements Metric.
func (m QueueMetric) Describe() string {
	return fmt.Sprintf("queue(%s,%s)", m.Queue.Name(), m.Role)
}

// F returns the raw fill-level term before the role sign is applied,
// exposed for tests of the Figure 3 equation.
func (m QueueMetric) F() float64 { return m.Queue.FillLevel() - 0.5 }

// Watch implements Watchable: the signal moves exactly when the queue's
// fill does.
func (m QueueMetric) Watch(fn func()) { m.Queue.Watch(funcWatcher{fn}) }

// funcWatcher adapts a plain func to the kernel's QueueWatcher interface
// for the generic Watchable path; the registry's queue-metric fast path
// bypasses it with pooled watcher objects.
type funcWatcher struct{ fn func() }

func (w funcWatcher) QueueChanged() { w.fn() }

// VirtualQueue is the pseudo-progress metric of §4.5 for applications with
// no natural bounded buffer ("a pure computation ... could use a metric
// such as the number of keys it has attempted"). The application produces
// completed work units into a virtual buffer that drains at a constant
// target rate; if the application cannot keep the buffer half full it is
// falling behind and pressure rises.
type VirtualQueue struct {
	name string
	// size is the buffer depth in work units.
	size float64
	// drainPerSec is the target processing rate.
	drainPerSec float64

	fill      float64
	lastDrain sim.Time

	// watchers are notified on every Complete — the only edge at which new
	// information enters the virtual buffer (the drain is pure clockwork,
	// already captured by the staleness bound).
	watchers []func()
}

// NewVirtualQueue creates a pseudo-progress buffer of the given depth that
// drains at targetRate units/second. It starts half full (zero pressure).
func NewVirtualQueue(name string, depth, targetRate float64) *VirtualQueue {
	if depth <= 0 || targetRate <= 0 {
		panic("progress: virtual queue needs positive depth and rate")
	}
	return &VirtualQueue{name: name, size: depth, drainPerSec: targetRate, fill: depth / 2}
}

// Complete records n finished work units at the given instant.
func (v *VirtualQueue) Complete(now sim.Time, n float64) {
	v.drain(now)
	v.fill += n
	if v.fill > v.size {
		v.fill = v.size
	}
	for _, fn := range v.watchers {
		fn()
	}
}

// Watch implements Watchable: completed work units are the signal's
// event edge.
func (v *VirtualQueue) Watch(fn func()) { v.watchers = append(v.watchers, fn) }

func (v *VirtualQueue) drain(now sim.Time) {
	dt := now.Sub(v.lastDrain).Seconds()
	if dt > 0 {
		v.fill -= dt * v.drainPerSec
		if v.fill < 0 {
			v.fill = 0
		}
		v.lastDrain = now
	}
}

// FillLevel returns the virtual fill in [0,1].
func (v *VirtualQueue) FillLevel(now sim.Time) float64 {
	v.drain(now)
	return v.fill / v.size
}

// Pressure implements Metric: the thread is the producer of completed work,
// so low fill (behind the target rate) yields positive pressure.
func (v *VirtualQueue) Pressure(now sim.Time) float64 {
	return Producer.Sign() * (v.FillLevel(now) - 0.5)
}

// Describe implements Metric.
func (v *VirtualQueue) Describe() string {
	return fmt.Sprintf("virtual(%s,%.0f/s)", v.name, v.drainPerSec)
}

// Registry is the kernel-side table the meta-interface system call fills
// in: which queues (or other metrics) each thread's progress is linked to.
type Registry struct {
	entries map[*kernel.Thread][]Metric

	// freeEnts recycles the per-thread metric slices across
	// register/unregister churn: an open-loop storm registering one
	// source per session would otherwise allocate a fresh slice per
	// admission forever. Slices are scrubbed before reuse.
	freeEnts [][]Metric

	// qmBoxed interns the boxed interface value for each (queue, role)
	// pair, so re-registering a recycled queue does not re-box the same
	// QueueMetric. Entries are value types with no life cycle; the cache
	// is bounded by the number of distinct queues ever registered.
	qmBoxed map[QueueMetric]Metric

	// qwSlab is the current chunk backing queue-metric watcher objects
	// (see watch); carving them from a slab keeps watcher wiring
	// allocation-free per registration.
	qwSlab []queueWatcher

	// dirty, when set, is invoked with the owning thread whenever one of
	// its watchable metrics announces a signal change. Nil (the default)
	// keeps registration free of watcher wiring.
	dirty func(t *kernel.Thread)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[*kernel.Thread][]Metric)}
}

// SetDirtyHook installs the dirty-signal callback: fn is invoked with the
// owning thread whenever one of its watchable metrics reports a change.
// Metrics registered before the hook is installed are wired up too, so
// installation order does not matter. The hook cannot be removed.
func (r *Registry) SetDirtyHook(fn func(t *kernel.Thread)) {
	r.dirty = fn
	if fn == nil {
		return
	}
	for t, ms := range r.entries {
		for _, m := range ms {
			r.watch(t, m)
		}
	}
}

// watch attaches the dirty hook to one metric if it is watchable. The
// closure snapshots the thread's slot generation: when thread slots are
// recycled, a watcher wired to a previous life of the slot must not mark
// the slot's new occupant dirty (a metric the new thread never
// registered), so the callback no-ops once the generation moves on.
func (r *Registry) watch(t *kernel.Thread, m Metric) {
	if qm, ok := m.(QueueMetric); ok {
		// Queue metrics — the overwhelmingly common case on the session
		// storm path — get a slab-carved watcher object instead of a
		// closure: zero amortized allocation per registration.
		if len(r.qwSlab) == 0 {
			r.qwSlab = make([]queueWatcher, 256)
		}
		w := &r.qwSlab[0]
		r.qwSlab = r.qwSlab[1:]
		*w = queueWatcher{r: r, t: t, gen: t.Gen()}
		qm.Queue.Watch(w)
		return
	}
	if w, ok := m.(Watchable); ok {
		gen := t.Gen()
		w.Watch(func() {
			if t.Gen() == gen {
				r.dirty(t)
			}
		})
	}
}

// queueWatcher is the pooled gen-guarded dirty hook for queue metrics: it
// must not mark the slot's new occupant dirty once the thread generation
// moves on (see watch).
type queueWatcher struct {
	r   *Registry
	t   *kernel.Thread
	gen uint32
}

func (w *queueWatcher) QueueChanged() {
	if w.t.Gen() == w.gen {
		w.r.dirty(w.t)
	}
}

// Watched reports whether every metric registered for t is watchable —
// i.e. whether the dirty hook sees all of t's signal changes. Jobs with
// any unwatchable metric must be re-sampled on the staleness bound alone.
func (r *Registry) Watched(t *kernel.Thread) bool {
	ms := r.entries[t]
	if len(ms) == 0 {
		return false
	}
	for _, m := range ms {
		if _, ok := m.(Watchable); !ok {
			return false
		}
	}
	return true
}

// Register links a metric to a thread. A thread may register several
// metrics (a pipeline stage is consumer of one queue and producer of the
// next); their pressures sum per Figure 3.
func (r *Registry) Register(t *kernel.Thread, m Metric) {
	ms, ok := r.entries[t]
	if !ok && len(r.freeEnts) > 0 {
		ms = r.freeEnts[len(r.freeEnts)-1]
		r.freeEnts = r.freeEnts[:len(r.freeEnts)-1]
	}
	r.entries[t] = append(ms, m)
	if r.dirty != nil {
		r.watch(t, m)
	}
}

// RegisterQueue is shorthand for the common producer/consumer linkage.
func (r *Registry) RegisterQueue(t *kernel.Thread, q *kernel.Queue, role Role) {
	qm := QueueMetric{Queue: q, Role: role}
	m, ok := r.qmBoxed[qm]
	if !ok {
		if r.qmBoxed == nil {
			r.qmBoxed = make(map[QueueMetric]Metric)
		}
		m = qm
		r.qmBoxed[qm] = m
	}
	r.Register(t, m)
}

// Unregister removes all linkage for a thread (e.g. on exit). The
// thread's metric slice is scrubbed and kept for reuse by a later
// Register.
func (r *Registry) Unregister(t *kernel.Thread) {
	ms, ok := r.entries[t]
	if !ok {
		return
	}
	delete(r.entries, t)
	if cap(ms) == 0 {
		return
	}
	ms = ms[:cap(ms)]
	for i := range ms {
		ms[i] = nil
	}
	r.freeEnts = append(r.freeEnts, ms[:0])
}

// HasMetrics reports whether t supplied any progress metric — the
// controller's real-rate versus miscellaneous classification hinges on it.
func (r *Registry) HasMetrics(t *kernel.Thread) bool {
	return len(r.entries[t]) > 0
}

// Metrics returns the metrics registered for t.
func (r *Registry) Metrics(t *kernel.Thread) []Metric {
	return r.entries[t]
}

// SummedPressure computes Σ_i R·F for thread t, clamped to [−½, ½] so a
// many-queue pipeline stage cannot swamp the controller. The clamp
// preserves the paper's invariant that pressure "is a number between −½
// and ½".
func (r *Registry) SummedPressure(t *kernel.Thread, now sim.Time) float64 {
	var sum float64
	for _, m := range r.entries[t] {
		sum += m.Pressure(now)
	}
	if sum > 0.5 {
		sum = 0.5
	}
	if sum < -0.5 {
		sum = -0.5
	}
	return sum
}
