package realrate

import (
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/sim"
)

// FaultKind enumerates the injectable fault taxonomy (DESIGN.md §8).
type FaultKind int

const (
	// FaultFreezeSignal pins a thread's summed progress pressure at the
	// first value seen inside the window — a stalled pipeline's signature.
	FaultFreezeSignal FaultKind = iota
	// FaultJumpSignal adds a seeded perturbation in [−Mag, +Mag] to each
	// pressure sample: a wildly non-monotonic signal.
	FaultJumpSignal
	// FaultBadSignal replaces pressure samples with NaN, ±Inf, or −Mag.
	FaultBadSignal
	// FaultTickJitter delays each timer interrupt by up to Mag × the tick
	// interval.
	FaultTickJitter
	// FaultCPUStall makes one CPU skip every dispatch point inside the
	// window, exercising work-pull recovery on its peers.
	FaultCPUStall
	// FaultStuckThread makes the target thread spin without running its
	// program: run segments with no progress.
	FaultStuckThread
	// FaultDropActuation discards the controller's reservation pushes for
	// the target inside the window.
	FaultDropActuation
	// FaultDelayActuation defers the controller's reservation pushes for
	// the target to the next control interval.
	FaultDelayActuation
)

func (k FaultKind) String() string { return faults.Kind(k).String() }

// FaultSpec is one scheduled fault: a kind active on [At, At+For), aimed
// at a thread name (Target; "" matches every thread) or a CPU (the stall
// kind), with a kind-specific magnitude.
type FaultSpec struct {
	Kind   FaultKind
	Target string
	CPU    int
	At     time.Duration
	For    time.Duration
	Mag    float64
}

// FaultPlan is a seeded, declarative fault schedule. Install one via
// Config.Faults; with a nil plan the fault apparatus costs nothing — the
// kernel and controller hot paths pay one nil check and the goldens stay
// byte-identical.
type FaultPlan struct {
	// Seed drives every randomized draw (jitter amounts, jump sizes, bad
	// values). Draws are pure hashes of (seed, spec, target, instant), so
	// a plan replays identically regardless of scheduling order.
	Seed  uint64
	Specs []FaultSpec
}

// FaultEvent is one fault surfaced to observers: either an injection (the
// first firing of each scheduled spec) or a controller detection (a
// rejected signal, a failed/dropped/delayed actuation).
type FaultEvent struct {
	Time time.Duration
	// Thread is the affected thread; nil for machine-level faults (tick
	// jitter, CPU stalls) and for injections aimed at every thread.
	Thread *Thread
	// Kind is the taxonomy slug: "freeze-signal", "jump-signal",
	// "bad-signal", "tick-jitter", "cpu-stall", "stuck-thread",
	// "drop-actuation", "delay-actuation" for injections;
	// "signal-rejected", "actuation-error", "actuation-dropped",
	// "actuation-delayed" for detections.
	Kind string
	// CPU is the stalled CPU for "cpu-stall" events, −1 otherwise.
	CPU    int
	Detail string
	// Err carries the typed error for "actuation-error" events.
	Err error
}

// DegradeEvent fires when the controller's watchdog demotes a real-rate
// job one rung down the degradation ladder: real-rate → fallback → misc.
type DegradeEvent struct {
	Time     time.Duration
	Thread   *Thread
	From, To string
	Reason   string
}

// RecoverEvent fires when a degraded job's progress signal recovers and
// the job is promoted one rung back up the ladder.
type RecoverEvent struct {
	Time     time.Duration
	Thread   *Thread
	From, To string
}

// Health is a snapshot of the system's fault-tolerance state.
type Health struct {
	// FaultsInjected counts individual injections performed by the
	// configured FaultPlan (zero with Config.Faults nil).
	FaultsInjected uint64
	// SignalsRejected counts NaN/Inf pressure samples refused at the
	// controller boundary and by the custom-source clamping adapter.
	SignalsRejected uint64
	// ActuationErrors counts dispatcher-refused reservation installs.
	ActuationErrors uint64
	// ActuationsDropped and ActuationsDelayed count injected actuation
	// faults.
	ActuationsDropped uint64
	ActuationsDelayed uint64
	// Degradations and Recoveries count ladder movements; JobsDegraded is
	// the number of jobs currently below the healthy rung.
	Degradations uint64
	Recoveries   uint64
	JobsDegraded int
	// OverloadRung is the overload governor's current brownout rung
	// ("normal", "throttle", "shed", "freeze"); empty with Config.Overload
	// nil. Sheds counts threads the shed rung killed; Throttled counts
	// admissions and renegotiations the governor refused.
	OverloadRung string
	Sheds        uint64
	Throttled    uint64
}

// Health returns the system's fault-tolerance counters. All zeros in a
// healthy run with well-behaved progress sources.
func (s *System) Health() Health {
	h := Health{SignalsRejected: s.srcRejects}
	if s.faults != nil {
		h.FaultsInjected = s.faults.Injected()
	}
	if s.ctl != nil {
		ch := s.ctl.Health()
		h.SignalsRejected += ch.SignalsRejected
		h.ActuationErrors = ch.ActuationErrors
		h.ActuationsDropped = ch.ActuationsDropped
		h.ActuationsDelayed = ch.ActuationsDelayed
		h.Degradations = ch.Degradations
		h.Recoveries = ch.Recoveries
		h.JobsDegraded = ch.JobsDegraded
		h.Sheds = ch.Sheds
		h.Throttled = ch.Throttled
		if g := s.ctl.Governor(); g != nil {
			h.OverloadRung = g.Rung().String()
		}
	}
	return h
}

// buildInjector compiles the public plan to the internal injector and
// wires its first-injection events to observers.
func (s *System) buildInjector(plan *FaultPlan) *faults.Injector {
	specs := make([]faults.Spec, len(plan.Specs))
	for i, f := range plan.Specs {
		specs[i] = faults.Spec{
			Kind:   faults.Kind(f.Kind),
			Target: f.Target,
			CPU:    f.CPU,
			At:     sim.Time(f.At),
			For:    sim.FromStd(f.For),
			Mag:    f.Mag,
		}
	}
	inj := faults.New(plan.Seed, specs)
	inj.OnEvent(s.fireInjected)
	return inj
}

// fireInjected fans a first-injection event out to observers.
func (s *System) fireInjected(ev faults.Event) {
	if len(s.hub.obs) == 0 {
		return
	}
	out := FaultEvent{
		Time: time.Duration(ev.Time),
		Kind: ev.Kind.String(),
		CPU:  ev.CPU,
	}
	if ev.Target != "" {
		out.Thread = s.threadByName(ev.Target)
	}
	for _, o := range s.hub.obs {
		o.OnFault(out)
	}
}

// threadByName finds a live public handle by thread name. Only the rare
// event paths use it; the hot paths stay on the byKern map.
func (s *System) threadByName(name string) *Thread {
	for _, th := range s.byKern {
		if th.t.Name() == name {
			return th
		}
	}
	return nil
}

// fireFault translates a controller-detected fault to the public event.
func (s *System) fireFault(f core.Fault) {
	if len(s.hub.obs) == 0 {
		return
	}
	ev := FaultEvent{
		Time:   time.Duration(f.Time),
		Kind:   f.Kind,
		CPU:    -1,
		Detail: f.Detail,
		Err:    f.Err,
	}
	if f.Job != nil {
		ev.Thread = s.byKern[f.Job.Thread()]
	}
	for _, o := range s.hub.obs {
		o.OnFault(ev)
	}
}

// fireDegrade fans a ladder demotion out to observers.
func (s *System) fireDegrade(d core.Degradation) {
	if len(s.hub.obs) == 0 {
		return
	}
	ev := DegradeEvent{
		Time:   time.Duration(d.Time),
		Thread: s.byKern[d.Job.Thread()],
		From:   d.From.String(),
		To:     d.To.String(),
		Reason: d.Reason,
	}
	for _, o := range s.hub.obs {
		o.OnDegrade(ev)
	}
}

// fireRecover fans a ladder promotion out to observers.
func (s *System) fireRecover(d core.Degradation) {
	if len(s.hub.obs) == 0 {
		return
	}
	ev := RecoverEvent{
		Time:   time.Duration(d.Time),
		Thread: s.byKern[d.Job.Thread()],
		From:   d.From.String(),
		To:     d.To.String(),
	}
	for _, o := range s.hub.obs {
		o.OnRecover(ev)
	}
}
