package realrate

import (
	"time"

	"repro/internal/ctlplane"
	"repro/internal/sim"
)

// ControllerMode selects how the feedback controller samples jobs.
type ControllerMode int

const (
	// ControllerPeriodic is the paper's sweep: every job sampled every
	// control interval. The default.
	ControllerPeriodic ControllerMode = iota
	// ControllerEventDriven samples a job only when its progress signal
	// moved past a threshold since the last sample, or when the staleness
	// bound elapsed. Idle jobs cost almost nothing.
	ControllerEventDriven
)

func (m ControllerMode) String() string {
	if m == ControllerEventDriven {
		return "event"
	}
	return "periodic"
}

// CtlPlaneConfig configures the sharded, staggered, event-driven control
// plane. The zero value keeps the classic single-thread periodic
// controller with its byte-identical dispatch schedule; any sharding or
// event-driven setting routes control through internal/ctlplane instead.
type CtlPlaneConfig struct {
	// Mode selects periodic or event-driven sampling.
	Mode ControllerMode
	// Shards splits the controller across this many staggered shard
	// threads, each owning the jobs resident on its CPU (thread-hashed on
	// a uniprocessor). 0 or 1 with Mode periodic keeps the classic
	// controller.
	Shards int
	// Threshold is the raw-pressure delta (fraction of a queue) that makes
	// a changed signal worth re-sampling in event-driven mode. 0 means
	// 0.05.
	Threshold float64
	// MaxStaleness bounds how long event-driven mode may skip re-sampling
	// any job. 0 means 10 control intervals.
	MaxStaleness time.Duration
}

// legacy reports whether the configuration is satisfied by the classic
// single-thread periodic controller.
func (c CtlPlaneConfig) legacy() bool {
	return c.Mode == ControllerPeriodic && c.Shards <= 1
}

// ControllerModeName returns the active sampling mode: "periodic",
// "event", or "none" under a baseline policy with no controller.
func (s *System) ControllerModeName() string {
	if s.ctl == nil {
		return "none"
	}
	if s.plane != nil {
		return s.plane.Mode().String()
	}
	return "periodic"
}

// ControlShards returns the shard count of the control plane: 1 for the
// classic controller, 0 under baseline policies.
func (s *System) ControlShards() int {
	if s.ctl == nil {
		return 0
	}
	if s.plane != nil {
		return s.plane.Shards()
	}
	return 1
}

// ShardStat is one control-plane shard's counters.
type ShardStat struct {
	// Shard is the shard index.
	Shard int
	// Ticks counts the shard's completed control ticks.
	Ticks uint64
	// Sampled and Skipped count job visits that did and did not re-sample
	// (the classic controller samples everything: Skipped is 0).
	Sampled uint64
	Skipped uint64
	// Handoffs counts jobs re-homed to another shard after migrating.
	Handoffs uint64
	// LastSampled and LastSkipped are the most recent tick's work counts.
	LastSampled int
	LastSkipped int
}

// ShardStats returns per-shard control-plane counters. Under the classic
// controller it synthesizes a single shard from the global sweep's
// counters; under baseline policies it returns nil.
func (s *System) ShardStats() []ShardStat {
	if s.ctl == nil {
		return nil
	}
	if s.plane == nil {
		n := len(s.ctl.Jobs())
		return []ShardStat{{
			Shard:       0,
			Ticks:       s.ctl.Steps(),
			Sampled:     s.ctl.Samples(),
			LastSampled: n,
		}}
	}
	stats := s.plane.Stats()
	out := make([]ShardStat, len(stats))
	for i, st := range stats {
		out[i] = ShardStat{
			Shard: st.Shard, Ticks: st.Ticks, Sampled: st.Sampled, Skipped: st.Skipped,
			Handoffs: st.Handoffs, LastSampled: st.LastSampled, LastSkipped: st.LastSkipped,
		}
	}
	return out
}

// buildPlane constructs the internal control plane for a non-legacy
// configuration.
func buildPlane(s *System, cfg CtlPlaneConfig) *ctlplane.Plane {
	mode := ctlplane.Periodic
	if cfg.Mode == ControllerEventDriven {
		mode = ctlplane.EventDriven
	}
	pcfg := ctlplane.Config{
		Mode:      mode,
		Shards:    cfg.Shards,
		Threshold: cfg.Threshold,
	}
	if cfg.MaxStaleness > 0 {
		pcfg.MaxStaleness = sim.FromStd(cfg.MaxStaleness)
	}
	return ctlplane.New(s.ctl, s.kern, s.rbs, s.reg, pcfg)
}
