package realrate

import (
	"time"

	"repro/internal/progress"
	"repro/internal/sim"
)

// Pace is a pseudo-progress metric for applications with no natural
// bounded buffer — §4.5's suggestion that "a pure computation (finding
// digits of pi or cracking passwords) could use a metric such as the
// number of keys it has attempted." The application reports completed work
// units; a virtual buffer drains at the target rate, and the controller
// allocates exactly the CPU needed to hold that rate.
//
// Pace implements ProgressSource: create one with NewPace and attach it
// via the RealRate spawn option.
type Pace struct {
	sys   *System
	bound bool
	vq    *progress.VirtualQueue
}

// NewPace creates a work-unit pace: a virtual buffer of the given depth in
// work units (how much burstiness is tolerated before pressure saturates;
// a few seconds' worth of units works well) draining at targetPerSec. The
// thread must call Complete as it works.
func NewPace(name string, targetPerSec, depth float64) *Pace {
	return &Pace{vq: progress.NewVirtualQueue(name, depth, targetPerSec)}
}

// bind attaches the pace to the system whose clock it samples. A pace
// feeds exactly one thread: sharing the virtual buffer would double-count
// the target rate.
func (p *Pace) bind(s *System) {
	if p.bound {
		panic("realrate: Pace already attached to a thread")
	}
	p.bound = true
	p.sys = s
}

// Complete reports n finished work units. The pace must already be
// attached to a thread via the RealRate spawn option (or SpawnPaced).
func (p *Pace) Complete(n float64) {
	if p.sys == nil {
		panic("realrate: Pace not attached; spawn a thread with RealRate(period, pace) first")
	}
	p.vq.Complete(p.sys.kern.Now(), n)
}

// FillLevel returns the virtual buffer's fill in [0,1]; 0.5 means the
// thread is exactly on rate.
func (p *Pace) FillLevel() float64 {
	if p.sys == nil {
		panic("realrate: Pace not attached; spawn a thread with RealRate(period, pace) first")
	}
	return p.vq.FillLevel(p.sys.kern.Now())
}

// Pressure implements ProgressSource.
func (p *Pace) Pressure(now time.Duration) float64 {
	return p.vq.Pressure(sim.Time(now))
}

// Describe implements ProgressSource.
func (p *Pace) Describe() string { return p.vq.Describe() }

// SpawnPaced creates a real-rate thread whose progress is a work-unit
// target instead of a queue: the thread must call Pace.Complete as it
// works, and the controller sizes its allocation to sustain targetPerSec.
// depth is the virtual buffer depth in work units.
//
// Deprecated: use NewPace with Spawn and the RealRate option.
func (s *System) SpawnPaced(name string, prog Program, targetPerSec, depth float64) (*Thread, *Pace) {
	pace := NewPace(name, targetPerSec, depth)
	th, err := s.Spawn(name, prog, RealRate(30*time.Millisecond, pace))
	if err != nil {
		panic(err)
	}
	return th, pace
}
