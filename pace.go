package realrate

import (
	"time"

	"repro/internal/progress"
	"repro/internal/sim"
)

// Pace is a pseudo-progress metric for applications with no natural
// bounded buffer — §4.5's suggestion that "a pure computation (finding
// digits of pi or cracking passwords) could use a metric such as the
// number of keys it has attempted." The application reports completed work
// units; a virtual buffer drains at the target rate, and the controller
// allocates exactly the CPU needed to hold that rate.
type Pace struct {
	sys *System
	vq  *progress.VirtualQueue
}

// Complete reports n finished work units.
func (p *Pace) Complete(n float64) {
	p.vq.Complete(p.sys.kern.Now(), n)
}

// FillLevel returns the virtual buffer's fill in [0,1]; 0.5 means the
// thread is exactly on rate.
func (p *Pace) FillLevel() float64 {
	return p.vq.FillLevel(p.sys.kern.Now())
}

// SpawnPaced creates a real-rate thread whose progress is a work-unit
// target instead of a queue: the thread must call Pace.Complete as it
// works, and the controller sizes its allocation to sustain targetPerSec.
// depth is the virtual buffer depth in work units (how much burstiness is
// tolerated before pressure saturates); a depth of a few seconds' worth of
// units works well.
func (s *System) SpawnPaced(name string, prog Program, targetPerSec, depth float64) (*Thread, *Pace) {
	th := s.spawn(name, prog)
	vq := progress.NewVirtualQueue(name, depth, targetPerSec)
	s.reg.Register(th.t, vq)
	th.job = s.ctl.AddRealRate(th.t, sim.FromStd(30*time.Millisecond))
	return th, &Pace{sys: s, vq: vq}
}
