package realrate

import (
	"time"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/sim"
)

// Observer receives scheduling and control events as the simulation runs —
// the tap that cmd/rrtop, cmd/rrtrace, and the trace recorder consume
// instead of private wiring. Register one with System.Observe before Run.
//
// Callbacks fire synchronously from kernel and controller hot paths: they
// must not mutate system state, and should be cheap. When no observer is
// registered the hot paths pay a single nil check, and the no-op fast path
// allocates nothing.
//
// Embed NopObserver to implement only the callbacks you care about.
type Observer interface {
	// OnDispatch fires when a thread begins a run segment on the given
	// CPU. th is nil for threads not created through the public API (the
	// controller's own thread). cpu is always 0 on a single-CPU machine.
	OnDispatch(now time.Duration, th *Thread, cpu int)
	// OnMigration fires when a thread is moved between CPUs (work-pull on
	// an idle CPU). It never fires when Config.CPUs <= 1. th is nil for
	// threads not created through the public API.
	OnMigration(now time.Duration, th *Thread, from, to int)
	// OnActuation fires when the feedback controller pushes a new
	// reservation into the dispatcher for th's job.
	OnActuation(now time.Duration, th *Thread, proportion int, period time.Duration)
	// OnQuality fires for every quality exception (see System.OnQuality).
	OnQuality(ev QualityEvent)
	// OnAdmission fires for every admission-control decision: reservation
	// requests from Spawn (Reserve and Aperiodic options) and from
	// Thread.Renegotiate, accepted or rejected.
	OnAdmission(ev AdmissionEvent)
	// OnExit fires exactly once when a thread leaves the machine — its
	// program returned Exit() or it was killed. It is the last event for
	// that thread: no OnDispatch or OnActuation follows it.
	OnExit(now time.Duration, th *Thread)
	// OnFault fires once per injected fault spec (at its first actual
	// injection) and for every controller-detected anomaly: rejected
	// progress samples, failed/dropped/delayed actuations. It never fires
	// in a healthy run with well-behaved sources.
	OnFault(ev FaultEvent)
	// OnDegrade fires when the watchdog demotes a real-rate thread one
	// rung down the degradation ladder (real-rate → fallback → misc).
	OnDegrade(ev DegradeEvent)
	// OnRecover fires when a degraded thread's progress signal recovers
	// and it is promoted one rung back up. Every OnRecover pairs with an
	// earlier OnDegrade for the same thread.
	OnRecover(ev RecoverEvent)
	// OnOverload fires on every movement of the overload governor's
	// brownout ladder (see OverloadConfig). It never fires with
	// Config.Overload nil.
	OnOverload(ev OverloadEvent)
	// OnShed fires for every thread the governor's shed rung kills, just
	// before the kill; an OnExit for the same thread follows.
	OnShed(ev ShedEvent)
}

// AdmissionEvent is one admission-control decision.
type AdmissionEvent struct {
	// Time is the simulated instant of the decision.
	Time time.Duration
	// Thread is the requesting thread. On a rejected Spawn the handle is
	// already retired: it never ran and is not part of the system.
	Thread *Thread
	// Requested is the proportion asked for, in ppt.
	Requested int
	// Period is the requested period (0 for aperiodic requests).
	Period time.Duration
	// Accepted reports the decision; when false Err holds the
	// admission-control error.
	Accepted bool
	Err      error
}

// NopObserver is an Observer that ignores every event. Embed it to
// implement only a subset of the callbacks.
type NopObserver struct{}

// OnDispatch implements Observer.
func (NopObserver) OnDispatch(time.Duration, *Thread, int) {}

// OnMigration implements Observer.
func (NopObserver) OnMigration(time.Duration, *Thread, int, int) {}

// OnActuation implements Observer.
func (NopObserver) OnActuation(time.Duration, *Thread, int, time.Duration) {}

// OnQuality implements Observer.
func (NopObserver) OnQuality(QualityEvent) {}

// OnAdmission implements Observer.
func (NopObserver) OnAdmission(AdmissionEvent) {}

// OnExit implements Observer.
func (NopObserver) OnExit(time.Duration, *Thread) {}

// OnFault implements Observer.
func (NopObserver) OnFault(FaultEvent) {}

// OnDegrade implements Observer.
func (NopObserver) OnDegrade(DegradeEvent) {}

// OnRecover implements Observer.
func (NopObserver) OnRecover(RecoverEvent) {}

// OnOverload implements Observer.
func (NopObserver) OnOverload(OverloadEvent) {}

// OnShed implements Observer.
func (NopObserver) OnShed(ShedEvent) {}

// Observe registers an observer. Multiple observers fire in registration
// order. Call before Run; observers cannot be removed.
func (s *System) Observe(o Observer) {
	if o == nil {
		panic("realrate: Observe(nil)")
	}
	s.hub.obs = append(s.hub.obs, o)
	s.hub.install()
}

// observerHub multiplexes kernel trace events and controller actuations to
// the trace recorder and registered observers. It is installed as the
// kernel tracer (and controller actuation hook) only once tracing or an
// observer actually exists, so unobserved systems keep the kernel's
// tracer-nil fast path.
type observerHub struct {
	sys *System
	rec kernel.Tracer // the trace recorder, when tracing is enabled
	obs []Observer
	// slo is the SLO latency tracker, set iff Config.Overload enabled it;
	// it taps the wake and dispatch edges.
	slo *sloTracker

	installed bool
}

var _ kernel.Tracer = (*observerHub)(nil)

// install wires the hub into the kernel and controller on first use.
func (h *observerHub) install() {
	if h.installed {
		return
	}
	h.installed = true
	h.sys.kern.SetTracer(h)
	if h.sys.ctl != nil {
		h.sys.ctl.OnActuate(h.onActuate)
	}
}

// OnDispatch implements kernel.Tracer.
func (h *observerHub) OnDispatch(now sim.Time, t *kernel.Thread) {
	if h.rec != nil {
		h.rec.OnDispatch(now, t)
	}
	if h.slo != nil {
		h.slo.dispatch(now, t)
	}
	if len(h.obs) > 0 {
		th := h.sys.byKern[t]
		cpu := t.CPU()
		for _, o := range h.obs {
			o.OnDispatch(time.Duration(now), th, cpu)
		}
	}
}

// OnMigration implements kernel.Tracer.
func (h *observerHub) OnMigration(now sim.Time, t *kernel.Thread, from, to int) {
	if h.rec != nil {
		h.rec.OnMigration(now, t, from, to)
	}
	if len(h.obs) > 0 {
		th := h.sys.byKern[t]
		for _, o := range h.obs {
			o.OnMigration(time.Duration(now), th, from, to)
		}
	}
}

// OnDeschedule implements kernel.Tracer (recorder-only; observers see
// dispatch edges).
func (h *observerHub) OnDeschedule(now sim.Time, t *kernel.Thread, ran sim.Duration) {
	if h.rec != nil {
		h.rec.OnDeschedule(now, t, ran)
	}
}

// OnWake implements kernel.Tracer (recorder and SLO tracker).
func (h *observerHub) OnWake(now sim.Time, t *kernel.Thread) {
	if h.rec != nil {
		h.rec.OnWake(now, t)
	}
	if h.slo != nil {
		h.slo.wake(now, t)
	}
}

// OnBlock implements kernel.Tracer (recorder-only).
func (h *observerHub) OnBlock(now sim.Time, t *kernel.Thread, on string) {
	if h.rec != nil {
		h.rec.OnBlock(now, t, on)
	}
}

// onActuate is the controller actuation hook.
func (h *observerHub) onActuate(j *core.Job, prop int, period sim.Duration, now sim.Time) {
	if len(h.obs) == 0 {
		return
	}
	th := h.sys.byKern[j.Thread()]
	for _, o := range h.obs {
		o.OnActuation(time.Duration(now), th, prop, time.Duration(period))
	}
}

// fireAdmission fans an admission decision out to observers.
func (s *System) fireAdmission(ev AdmissionEvent) {
	for _, o := range s.hub.obs {
		o.OnAdmission(ev)
	}
}
