package realrate

import (
	"math"
	"time"

	"repro/internal/progress"
	"repro/internal/sim"
)

// ProgressSource is one progress metric attached to a real-rate thread —
// the public form of the paper's symbiotic interface (§3.2). The
// controller samples every source of a thread each control interval and
// sums their pressures per Figure 3.
//
// Three kinds exist, all interchangeable where a source is expected:
// queue roles (ConsumerOf, ProducerOf — fill level of a kernel bounded
// buffer), paces (NewPace — a virtual buffer draining at a target work
// rate, §4.5), and user implementations of this interface measuring any
// work unit at all.
type ProgressSource interface {
	// Pressure returns the progress pressure R·F at the simulated instant
	// now: a value in [−½, ½], positive when the thread falls behind and
	// needs more CPU, negative when it runs ahead. Values outside the
	// range are clamped.
	Pressure(now time.Duration) float64
	// Describe identifies the source in traces and tools.
	Describe() string
}

// registerSource links one progress source to a thread in the internal
// registry. The built-in kinds register their native internal metrics (so
// the controller's sampling path is exactly the pre-seam one); custom
// implementations are wrapped in a clamping adapter.
func (s *System) registerSource(th *Thread, src ProgressSource) {
	switch v := src.(type) {
	case QueueLink:
		s.reg.RegisterQueue(th.t, v.queue.q, v.role)
	case *Pace:
		v.bind(s)
		s.reg.Register(th.t, v.vq)
	default:
		s.reg.Register(th.t, &customMetric{src: src, rejects: &s.srcRejects})
	}
}

// customMetric adapts a user ProgressSource to the internal metric
// contract: clamping to the paper's pressure range, and sanitizing the
// values user code can produce that the built-in sources cannot — NaN
// (replaced by the last good sample) and ±Inf (clamped to the range
// boundary). Rejections are counted into System.Health.
type customMetric struct {
	src ProgressSource
	// last is the most recent sanitized sample, substituted for NaN; it
	// starts at 0 (the "keeping pace" pressure).
	last float64
	// rejects points at the owning System's rejection counter.
	rejects *uint64
}

// Pressure implements progress.Metric.
func (m *customMetric) Pressure(now sim.Time) float64 {
	p := m.src.Pressure(time.Duration(now))
	switch {
	case math.IsNaN(p):
		*m.rejects++
		p = m.last
	case math.IsInf(p, 1):
		*m.rejects++
		p = 0.5
	case math.IsInf(p, -1):
		*m.rejects++
		p = -0.5
	default:
		if p > 0.5 {
			p = 0.5
		}
		if p < -0.5 {
			p = -0.5
		}
	}
	m.last = p
	return p
}

// Describe implements progress.Metric.
func (m *customMetric) Describe() string { return m.src.Describe() }

var _ progress.Metric = (*customMetric)(nil)
