// Internal churn-recycling tests: the free lists must be bounded by the
// peak live population (recycling, not leaking), and arbitrary fuzzed
// churn schedules must behave identically with pools on and off.
package realrate

import (
	"bytes"
	"fmt"
	"testing"
	"time"
)

// churnProg returns a program that computes for a few steps and exits.
func churnProg(steps int) Program {
	n := 0
	return ProgramFunc(func(th *Thread, now time.Duration) Action {
		n++
		if n > steps {
			return Exit()
		}
		return Compute(150_000)
	})
}

// TestChurnPoolNonLeak drives hundreds of short-lived spawns through the
// pooled lifecycle and checks nothing accumulates with the total spawn
// count: the kernel free list and the handle index are both bounded by the
// peak number of simultaneously live threads, not by how many threads ever
// existed.
func TestChurnPoolNonLeak(t *testing.T) {
	sys := NewSystem(Config{})
	peak, spawned := 0, 0
	sample := func() {
		if n := len(sys.kern.Threads()); n > peak {
			peak = n
		}
	}
	step := 0
	sys.Every(10*time.Millisecond, func(now time.Duration) {
		step++
		sample()
		name := fmt.Sprintf("churn%d", step%5)
		var err error
		switch step % 3 {
		case 0:
			_, err = sys.Spawn(name, churnProg(3), Reserve(20, 10*time.Millisecond))
		case 1:
			_, err = sys.Spawn(name, churnProg(4), Miscellaneous())
		default:
			_, err = sys.Spawn(name, churnProg(2), Interactive())
		}
		if err == nil {
			spawned++
		}
	})
	sys.Run(5 * time.Second)
	sample()

	if spawned < 300 {
		t.Fatalf("storm only spawned %d threads", spawned)
	}
	if peak >= spawned/4 {
		t.Fatalf("peak live %d too close to total spawned %d for the bound to mean anything", peak, spawned)
	}
	if free := sys.kern.FreeThreads(); free > peak {
		t.Errorf("kernel free list holds %d threads, exceeds peak live %d: exits are leaking objects", free, peak)
	}
	if n := len(sys.byKern); n > peak {
		t.Errorf("byKern still indexes %d threads, exceeds peak live %d: retired handles are leaking", n, peak)
	}
}

// runChurnSchedule executes one fuzz-decoded churn schedule and returns
// the raw dispatch trace. Each byte drives one wave: thread class, name,
// lifetime, plus optional kill and renegotiate actions.
func runChurnSchedule(t *testing.T, data []byte, disablePools bool) []byte {
	t.Helper()
	sys := NewSystem(Config{DisablePools: disablePools})
	tr := sys.EnableTracing(0)
	var spawned []*Thread
	i := 0
	sys.Every(5*time.Millisecond, func(now time.Duration) {
		if i >= len(data) {
			return
		}
		b := data[i]
		i++
		name := fmt.Sprintf("c%d", b%5)
		steps := int(b%7) + 1
		var th *Thread
		var err error
		switch b % 4 {
		case 0:
			th, err = sys.Spawn(name, churnProg(steps), Reserve(int(b%30)+1, 10*time.Millisecond))
		case 1:
			th, err = sys.Spawn(name, churnProg(steps), Miscellaneous())
		case 2:
			th, err = sys.Spawn(name, churnProg(steps), Interactive())
		default:
			th, err = sys.Spawn(name, churnProg(steps), Unmanaged())
		}
		if err != nil {
			return // admission veto is part of the schedule, not a failure
		}
		spawned = append(spawned, th)
		if b&0x10 != 0 && len(spawned) > 1 {
			spawned[int(b)%len(spawned)].Kill()
		}
		if b&0x20 != 0 && b%4 == 0 && !th.Exited() {
			_ = th.Renegotiate(int(b%25) + 1)
		}
	})
	sys.Run(time.Duration(len(data)+8) * 5 * time.Millisecond)
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzChurnSchedules is the pooling differential fuzzer: any churn
// schedule — spawns across all classes, mid-life kills, renegotiations —
// must produce byte-identical dispatch traces with pools on and off, and
// must never panic in either mode.
func FuzzChurnSchedules(f *testing.F) {
	f.Add([]byte{0x00})
	f.Add([]byte{0x01, 0x12, 0x23, 0x34})
	f.Add([]byte{0xff, 0x80, 0x40, 0x20, 0x10, 0x08})
	f.Add(bytes.Repeat([]byte{0x33, 0x9c}, 16))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		if len(data) > 48 {
			data = data[:48]
		}
		pooled := runChurnSchedule(t, data, false)
		unpooled := runChurnSchedule(t, data, true)
		if !bytes.Equal(pooled, unpooled) {
			t.Fatalf("pools-on/pools-off traces diverge for schedule %x", data)
		}
	})
}
