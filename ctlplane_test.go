package realrate_test

import (
	"fmt"
	"testing"
	"time"

	realrate "repro"
)

// rungRecorder captures the governor's ladder movements.
type rungRecorder struct {
	realrate.NopObserver
	moves []string
}

func (r *rungRecorder) OnOverload(ev realrate.OverloadEvent) {
	r.moves = append(r.moves, ev.From+"→"+ev.To)
}

// stormRungs runs a decisive overload storm — far more miscellaneous
// demand than one CPU has capacity — under the given shard count and
// returns the sequence of ladder movements.
func stormRungs(t *testing.T, shards int) []string {
	t.Helper()
	rec := &rungRecorder{}
	sys := realrate.NewSystem(realrate.Config{
		CPUs: 4,
		Overload: &realrate.OverloadConfig{
			TripIntervals:    5,
			RecoverIntervals: 50,
		},
		CtlPlane: realrate.CtlPlaneConfig{Shards: shards},
	})
	sys.Observe(rec)
	for i := 0; i < 120; i++ {
		if _, err := sys.Spawn(fmt.Sprintf("hog%d", i), realrate.HogProgram(400_000)); err != nil {
			t.Fatalf("spawn hog%d: %v", i, err)
		}
	}
	sys.Run(3 * time.Second)
	return rec.moves
}

// TestGovernorLadderShardInvariant pins the satellite contract of the
// sharded plane: interval-rate accounting (misses and demotions per
// epoch, demand vs. capacity) aggregates across shards, so the overload
// ladder trips identically whether one shard runs the sweep or four
// split it.
func TestGovernorLadderShardInvariant(t *testing.T) {
	one := stormRungs(t, 1)
	four := stormRungs(t, 4)
	if len(one) == 0 {
		t.Fatal("storm never moved the ladder under 1 shard; test is vacuous")
	}
	if len(one) != len(four) {
		t.Fatalf("ladder moved %d times under 1 shard, %d under 4:\n1: %v\n4: %v",
			len(one), len(four), one, four)
	}
	for i := range one {
		if one[i] != four[i] {
			t.Fatalf("ladder movement %d differs: %q under 1 shard, %q under 4\n1: %v\n4: %v",
				i, one[i], four[i], one, four)
		}
	}
}
