package realrate

import (
	"time"

	"repro/internal/kernel"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// SLO accounting promotes the trace recorder's reservoir-sampled
// wake→dispatch latencies to a first-class, always-on (when
// Config.Overload is set) per-job and per-class tail-latency metric: the
// time between a thread becoming runnable and actually getting a CPU is
// the user-visible scheduling latency, and its p99/p999 against a target
// is what "degraded" means to a caller. The tracker also keeps a short
// recent window whose p99 feeds the overload governor's SLO-driven trip
// point (OverloadConfig.LatencyTrip), and a second, coarser dimension:
// end-to-end session latencies recorded explicitly through
// System.ObserveSessionLatency against OverloadConfig.SessionSLO.

// sloCaps bound the tracker's footprint: past each cap, reservoir
// sampling (fixed-seed, deterministic) keeps a uniform sample of the
// whole run, so 10k-thread storms don't grow the heap without bound.
const (
	sloJobSamples   = 512
	sloClassSamples = 4096
	sloRecent       = 256
)

// sloSeries is one reservoir of latency samples (in seconds) plus exact
// attainment counters — attainment is counted per sample, not estimated
// from the reservoir. Each series owns its reservoir RNG, seeded from the
// series' identity alone: which samples a reservoir keeps then depends
// only on that series' own sample stream, never on how samples of
// unrelated jobs interleave with it in observer-callback order. (SMP
// machines and sharded control planes reorder taps *across* jobs for the
// same seed; the per-job order is fixed by the simulation. A single
// shared RNG coupled every reservoir to the global interleaving.)
type sloSeries struct {
	seen     uint64
	attained uint64
	samples  []float64
	rng      *sim.RNG
}

func newSLOSeries(dim byte, key string) *sloSeries {
	return &sloSeries{rng: sim.NewRNG(sloSeed(dim, key))}
}

// sloSeed derives a reservoir seed from the series' identity (dimension
// tag + key) with an FNV-1a hash — stable across runs and platforms.
func sloSeed(dim byte, key string) uint64 {
	h := uint64(0xcbf29ce484222325) ^ uint64(dim)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint64(key[i])) * 0x100000001b3
	}
	return h
}

func (ss *sloSeries) add(lat float64, ok bool, cap int) {
	ss.seen++
	if ok {
		ss.attained++
	}
	if len(ss.samples) < cap {
		ss.samples = append(ss.samples, lat)
		return
	}
	if i := ss.rng.Intn(int(ss.seen)); i < cap {
		ss.samples[i] = lat
	}
}

// sloTracker is installed on the observer hub when Config.Overload is
// set; the hub feeds it every OnWake/OnDispatch edge. The pending wake
// instant and the per-job/per-class series pointers are cached on the
// Thread handle, so the per-sample cost is one pointer-map translation
// plus reservoir arithmetic — no map churn, no string hashing.
type sloTracker struct {
	sys           *System
	target        sim.Duration
	sessionTarget sim.Duration

	byJob   map[string]*sloSeries
	byClass map[string]*sloSeries
	total   *sloSeries

	// sessTotal and sessByKind hold the session dimension: one sample per
	// ObserveSessionLatency call, measured against sessionTarget.
	sessTotal  *sloSeries
	sessByKind map[string]*sloSeries

	// recent is a ring of the newest latencies (seconds) for the
	// governor's SLO trip probe.
	recent    []float64
	recentIdx int
	scratch   []float64
}

// DefaultLatencySLO is the wake→dispatch target used when
// OverloadConfig.LatencySLO is zero: ten timer ticks.
const DefaultLatencySLO = 10 * time.Millisecond

// DefaultSessionSLO is the end-to-end session latency target used when
// OverloadConfig.SessionSLO is zero. Sessions span several wake→dispatch
// edges plus the work between them, so the default is an order of
// magnitude above DefaultLatencySLO.
const DefaultSessionSLO = 100 * time.Millisecond

func newSLOTracker(sys *System, target, sessionTarget time.Duration) *sloTracker {
	if target <= 0 {
		target = DefaultLatencySLO
	}
	if sessionTarget <= 0 {
		sessionTarget = DefaultSessionSLO
	}
	return &sloTracker{
		sys:           sys,
		target:        sim.FromStd(target),
		sessionTarget: sim.FromStd(sessionTarget),
		byJob:         make(map[string]*sloSeries),
		byClass:       make(map[string]*sloSeries),
		total:         newSLOSeries('t', ""),
		sessTotal:     newSLOSeries('S', ""),
		sessByKind:    make(map[string]*sloSeries),
	}
}

// wake records the instant a thread became runnable. A thread woken twice
// before running keeps the first instant — the latency is measured from
// when it first could have run.
func (tr *sloTracker) wake(now sim.Time, t *kernel.Thread) {
	if th, ok := t.User.(*Thread); ok && !th.sloPending {
		th.sloPending, th.sloWake = true, now
	}
}

// dispatch closes a pending wake edge into one latency sample.
func (tr *sloTracker) dispatch(now sim.Time, t *kernel.Thread) {
	th, ok := t.User.(*Thread)
	if !ok || !th.sloPending {
		return // no open edge (or the controller's own thread: no SLO)
	}
	th.sloPending = false
	lat := now.Sub(th.sloWake)
	sec := lat.Seconds()
	within := lat <= tr.target
	tr.total.add(sec, within, sloClassSamples)
	if th.sloJob == nil {
		// First sample for this handle: resolve (and memoize) its series.
		// The class is fixed at spawn, so caching is safe.
		th.sloJob = tr.series(tr.byJob, 'j', th.Name())
		th.sloClass = tr.series(tr.byClass, 'c', th.Class())
	}
	th.sloJob.add(sec, within, sloJobSamples)
	th.sloClass.add(sec, within, sloClassSamples)
	if len(tr.recent) < sloRecent {
		tr.recent = append(tr.recent, sec)
	} else {
		tr.recent[tr.recentIdx] = sec
		tr.recentIdx = (tr.recentIdx + 1) % sloRecent
	}
}

// session records one end-to-end session latency against sessionTarget.
func (tr *sloTracker) session(kind string, lat sim.Duration) {
	sec := lat.Seconds()
	within := lat <= tr.sessionTarget
	tr.sessTotal.add(sec, within, sloClassSamples)
	tr.series(tr.sessByKind, 's', kind).add(sec, within, sloClassSamples)
}

func (tr *sloTracker) series(m map[string]*sloSeries, dim byte, key string) *sloSeries {
	ss := m[key]
	if ss == nil {
		ss = newSLOSeries(dim, key)
		m[key] = ss
	}
	return ss
}

// recentP99 is the governor's SLO probe: the p99 over the recent window.
func (tr *sloTracker) recentP99() sim.Duration {
	if len(tr.recent) == 0 {
		return 0
	}
	tr.scratch = append(tr.scratch[:0], tr.recent...)
	return sim.Duration(metrics.Percentile(tr.scratch, 99) * float64(sim.Second))
}

// SLOStat summarizes one job's or class's wake→dispatch latency.
type SLOStat struct {
	// Samples is the exact number of latency edges observed (the
	// percentiles are computed over a uniform reservoir of them).
	Samples uint64
	// P50, P99, P999 are the latency percentiles.
	P50, P99, P999 time.Duration
	// Attainment is the exact fraction of samples at or under the target.
	Attainment float64
}

// SLOReport is the system-wide SLO accounting snapshot.
type SLOReport struct {
	// Target is the latency SLO the attainment figures are measured
	// against (OverloadConfig.LatencySLO).
	Target time.Duration
	// Samples and Attainment cover every thread together.
	Samples    uint64
	Attainment float64
	P50        time.Duration
	P99        time.Duration
	P999       time.Duration
	// Classes and Jobs break the accounting down by thread class and by
	// thread name.
	Classes map[string]SLOStat
	Jobs    map[string]SLOStat
	// SessionTarget is the end-to-end session latency SLO
	// (OverloadConfig.SessionSLO); Session aggregates every latency
	// recorded through ObserveSessionLatency against it, and Sessions
	// breaks the dimension down by session kind. The per-kind sample
	// counts sum exactly to Session.Samples — one sample per recorded
	// session, nothing dropped, nothing double-counted.
	SessionTarget time.Duration
	Session       SLOStat
	Sessions      map[string]SLOStat
}

func (ss *sloSeries) stat() SLOStat {
	st := SLOStat{Samples: ss.seen}
	if ss.seen > 0 {
		st.Attainment = float64(ss.attained) / float64(ss.seen)
	}
	if len(ss.samples) > 0 {
		st.P50 = secDur(metrics.Percentile(ss.samples, 50))
		st.P99 = secDur(metrics.Percentile(ss.samples, 99))
		st.P999 = secDur(metrics.Percentile(ss.samples, 99.9))
	}
	return st
}

func secDur(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}

// ObserveSessionLatency records one end-to-end latency sample for the
// named session kind — the time from a user-level session's arrival to
// its final delivery, spanning every stage of its pipeline. It is the
// caller's declaration that one session completed; the tracker measures
// it against OverloadConfig.SessionSLO and reports the dimension through
// SLO().Session/Sessions. A no-op unless Config.Overload enabled SLO
// accounting. Latencies are clamped below at zero.
func (s *System) ObserveSessionLatency(kind string, latency time.Duration) {
	if s.slo == nil {
		return
	}
	if latency < 0 {
		latency = 0
	}
	s.slo.session(kind, sim.FromStd(latency))
}

// SLO returns the wake→dispatch latency accounting: overall, per-class,
// and per-job p50/p99/p999 with exact SLO attainment, plus the recorded
// end-to-end session dimension. It returns a zero report unless
// Config.Overload enabled SLO accounting.
func (s *System) SLO() SLOReport {
	if s.slo == nil {
		return SLOReport{}
	}
	tr := s.slo
	rep := SLOReport{
		Target:        tr.target.Std(),
		SessionTarget: tr.sessionTarget.Std(),
		Classes:       make(map[string]SLOStat, len(tr.byClass)),
		Jobs:          make(map[string]SLOStat, len(tr.byJob)),
		Sessions:      make(map[string]SLOStat, len(tr.sessByKind)),
	}
	tot := tr.total.stat()
	rep.Samples = tot.Samples
	rep.Attainment = tot.Attainment
	rep.P50, rep.P99, rep.P999 = tot.P50, tot.P99, tot.P999
	for cls, ss := range tr.byClass {
		rep.Classes[cls] = ss.stat()
	}
	for name, ss := range tr.byJob {
		rep.Jobs[name] = ss.stat()
	}
	rep.Session = tr.sessTotal.stat()
	for kind, ss := range tr.sessByKind {
		rep.Sessions[kind] = ss.stat()
	}
	return rep
}
