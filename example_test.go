package realrate_test

import (
	"fmt"
	"time"

	realrate "repro"
)

// ExampleSystem_Spawn builds the canonical pipeline with option-based
// spawning: a reserved producer, a real-rate consumer discovered from its
// queue role, and a batch hog (miscellaneous is the default class).
func ExampleSystem_Spawn() {
	sys := realrate.NewSystem(realrate.Config{})
	pipe := sys.NewQueue("pipe", 1<<20)

	pc := true
	producer := realrate.ProgramFunc(func(th *realrate.Thread, now time.Duration) realrate.Action {
		pc = !pc
		if pc {
			return realrate.Compute(400_000)
		}
		return realrate.Produce(pipe, 20_000)
	})
	cc := true
	consumer := realrate.ProgramFunc(func(th *realrate.Thread, now time.Duration) realrate.Action {
		cc = !cc
		if cc {
			return realrate.Consume(pipe, 4096)
		}
		return realrate.Compute(40 * 4096)
	})

	prod, _ := sys.Spawn("producer", producer,
		realrate.Reserve(100, 10*time.Millisecond))
	cons, _ := sys.Spawn("consumer", consumer,
		realrate.RealRate(0, realrate.ConsumerOf(pipe)))
	batch, _ := sys.Spawn("batch", realrate.HogProgram(400_000))

	sys.Run(10 * time.Second)

	fmt.Println("producer:", prod.Class())
	fmt.Println("consumer:", cons.Class())
	fmt.Println("batch:", batch.Class())
	fmt.Println("queue near half-full:", pipe.FillLevel() > 0.35 && pipe.FillLevel() < 0.65)
	fmt.Println("consumer found its share:", cons.Allocation() > 120 && cons.Allocation() < 300)
	// Output:
	// producer: real-time
	// consumer: real-rate
	// batch: miscellaneous
	// queue near half-full: true
	// consumer found its share: true
}

// ExampleReserve shows admission control on the reservation option: the
// second request exceeds the remaining capacity and is rejected, leaving
// the thread uncreated.
func ExampleReserve() {
	sys := realrate.NewSystem(realrate.Config{})
	_, err1 := sys.Spawn("codec", realrate.HogProgram(400_000),
		realrate.Reserve(700, 10*time.Millisecond))
	_, err2 := sys.Spawn("greedy", realrate.HogProgram(400_000),
		realrate.Reserve(400, 10*time.Millisecond))

	fmt.Println("codec admitted:", err1 == nil)
	fmt.Println("greedy rejected:", err2 != nil)
	// Output:
	// codec admitted: true
	// greedy rejected: true
}

// ExampleNewPace attaches §4.5's work-unit progress metric: a password
// cracker with no queues reports completed keys, and the controller holds
// it at the target rate while a hog takes the rest.
func ExampleNewPace() {
	sys := realrate.NewSystem(realrate.Config{})
	pace := realrate.NewPace("cracker", 1200, 2400) // 1200 keys/s, 2 s of buffer

	keys := 0
	cracker := realrate.ProgramFunc(func(th *realrate.Thread, now time.Duration) realrate.Action {
		if keys > 0 {
			pace.Complete(1)
		}
		keys++
		return realrate.Compute(100_000) // 0.25 ms per key
	})
	sys.Spawn("cracker", cracker, realrate.RealRate(30*time.Millisecond, pace))
	sys.Spawn("hog", realrate.HogProgram(400_000))
	sys.Run(10 * time.Second)

	rate := float64(keys) / 10
	fmt.Println("held the target rate:", rate > 1050 && rate < 1450)
	// Output:
	// held the target rate: true
}

// ExampleConfig_policy runs the same hog pair under a baseline scheduler
// selected through the policy seam; with 3:1 tickets stride delivers a 3:1
// CPU split, no controller involved.
func ExampleConfig_policy() {
	sys := realrate.NewSystem(realrate.Config{
		Policy: realrate.Stride(10 * time.Millisecond),
	})
	gold, _ := sys.Spawn("gold", realrate.HogProgram(400_000), realrate.Tickets(300))
	base, _ := sys.Spawn("base", realrate.HogProgram(400_000), realrate.Tickets(100))
	sys.Run(8 * time.Second)

	ratio := gold.CPUTime().Seconds() / base.CPUTime().Seconds()
	fmt.Println("policy:", sys.PolicyName())
	fmt.Println("3:1 split:", ratio > 2.7 && ratio < 3.3)
	// Output:
	// policy: stride
	// 3:1 split: true
}

// ExampleObserver taps the control loop: every admission decision and the
// stream of actuations are visible without touching the scheduler.
func ExampleObserver() {
	sys := realrate.NewSystem(realrate.Config{})
	obs := &admissionLogger{}
	sys.Observe(obs)

	sys.Spawn("rt", realrate.HogProgram(400_000), realrate.Reserve(300, 10*time.Millisecond))
	sys.Spawn("greedy", realrate.HogProgram(400_000), realrate.Reserve(800, 10*time.Millisecond))
	sys.Run(time.Second)

	fmt.Println("actuations observed:", obs.actuations > 0)
	// Output:
	// admission rt 300ppt: accepted
	// admission greedy 800ppt: rejected
	// actuations observed: true
}

// admissionLogger prints admission decisions and counts actuations.
type admissionLogger struct {
	realrate.NopObserver
	actuations int
}

func (l *admissionLogger) OnAdmission(ev realrate.AdmissionEvent) {
	verdict := "accepted"
	if !ev.Accepted {
		verdict = "rejected"
	}
	fmt.Printf("admission %s %dppt: %s\n", ev.Thread.Name(), ev.Requested, verdict)
}

func (l *admissionLogger) OnActuation(now time.Duration, th *realrate.Thread, prop int, period time.Duration) {
	l.actuations++
}
