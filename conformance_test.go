package realrate_test

import (
	"os"
	"strings"
	"testing"
	"time"

	realrate "repro"
)

// conformancePipeline spawns the canonical pipeline/hog scenario through
// the unified Spawn API: a reserved producer, a real-rate consumer, and a
// miscellaneous hog. It is byte-for-byte the workload behind
// testdata/goldens/rbs_dispatch.golden.
func conformancePipeline(t *testing.T, sys *realrate.System) (*realrate.Queue, []*realrate.Thread) {
	t.Helper()
	pipe := sys.NewQueue("pipe", 1<<20)
	pc := true
	producer := realrate.ProgramFunc(func(th *realrate.Thread, now time.Duration) realrate.Action {
		pc = !pc
		if pc {
			return realrate.Compute(400_000)
		}
		return realrate.Produce(pipe, 20_000)
	})
	cc := true
	consumer := realrate.ProgramFunc(func(th *realrate.Thread, now time.Duration) realrate.Action {
		cc = !cc
		if cc {
			return realrate.Consume(pipe, 4096)
		}
		return realrate.Compute(40 * 4096)
	})
	prod, err := sys.Spawn("producer", producer, realrate.Reserve(100, 10*time.Millisecond))
	if err != nil {
		t.Fatalf("spawn producer: %v", err)
	}
	cons, err := sys.Spawn("consumer", consumer, realrate.RealRate(0, realrate.ConsumerOf(pipe)))
	if err != nil {
		t.Fatalf("spawn consumer: %v", err)
	}
	hog, err := sys.Spawn("hog", realrate.HogProgram(400_000))
	if err != nil {
		t.Fatalf("spawn hog: %v", err)
	}
	return pipe, []*realrate.Thread{prod, cons, hog}
}

// policies lists every public policy constructor; the conformance suite
// runs the same scenario under each.
func policies() map[string]func() realrate.Policy {
	return map[string]func() realrate.Policy{
		"rbs":         func() realrate.Policy { return realrate.RBS() },
		"stride":      func() realrate.Policy { return realrate.Stride(10 * time.Millisecond) },
		"lottery":     func() realrate.Policy { return realrate.Lottery(10*time.Millisecond, 42) },
		"linux":       func() realrate.Policy { return realrate.Linux() },
		"round-robin": func() realrate.Policy { return realrate.RoundRobin(10 * time.Millisecond) },
	}
}

// TestPolicyConformance runs the pipeline/hog scenario under every public
// policy and asserts the scheduler invariants that must hold regardless of
// discipline: queue conservation, no lost threads, full time accounting,
// and work conservation (the machine never idles with a hog runnable).
func TestPolicyConformance(t *testing.T) {
	const dur = 2 * time.Second
	for name, mk := range policies() {
		t.Run(name, func(t *testing.T) {
			sys := realrate.NewSystem(realrate.Config{Policy: mk()})
			if got := sys.PolicyName(); got == "" {
				t.Fatal("empty policy name")
			}
			pipe, threads := conformancePipeline(t, sys)
			sys.Run(dur)

			// Queue conservation: nothing lost or invented in transit.
			if pipe.Produced() != pipe.Consumed()+pipe.Fill() {
				t.Errorf("queue conservation broken: produced %d != consumed %d + fill %d",
					pipe.Produced(), pipe.Consumed(), pipe.Fill())
			}
			if pipe.Fill() < 0 || pipe.Fill() > pipe.Size() {
				t.Errorf("fill %d outside [0, %d]", pipe.Fill(), pipe.Size())
			}

			// No lost threads: every spawned thread still has a coherent
			// state and ran at least once in two seconds.
			var busy time.Duration
			for _, th := range threads {
				switch th.State() {
				case "ready", "running", "blocked", "sleeping":
				default:
					t.Errorf("thread %s in unexpected state %q", th.Name(), th.State())
				}
				if th.CPUTime() == 0 {
					t.Errorf("thread %s starved: zero CPU over %v", th.Name(), dur)
				}
				busy += th.CPUTime()
			}

			// Time accounting closes: thread time + controller + idle +
			// overhead = elapsed (work conservation with a hog means idle
			// stays a sliver).
			st := sys.Stats()
			total := busy + sys.ControllerCPU() + st.Idle + st.SchedOverhead
			if diff := (st.Elapsed - total).Abs(); diff > time.Millisecond {
				t.Errorf("time accounting leaks %v (elapsed %v, accounted %v)", diff, st.Elapsed, total)
			}
			// Baselines are work-conserving: a runnable hog keeps idle at a
			// sliver. RBS naps budget-exhausted threads until their next
			// period (§3.1), so it may idle briefly between period ends.
			idleCap := dur / 10
			if name == "rbs" {
				idleCap = dur / 4
			}
			if st.Idle > idleCap {
				t.Errorf("machine idled %v with a hog runnable", st.Idle)
			}
			if st.Dispatches == 0 || st.Ticks == 0 {
				t.Errorf("no scheduling activity: %+v", st)
			}

			// The producer's reservation must be expressible only under
			// RBS; everywhere else it degrades but the pipeline still flows.
			if pipe.Consumed() == 0 {
				t.Error("pipeline moved no bytes")
			}
		})
	}
}

// TestRBSDispatchTraceGolden replays the conformance scenario under the
// default policy with tracing enabled and requires the dispatch schedule
// to be byte-identical to the pre-redesign golden — the proof that the API
// redesign left the scheduler's behavior untouched.
func TestRBSDispatchTraceGolden(t *testing.T) {
	want, err := os.ReadFile("testdata/goldens/rbs_dispatch.golden")
	if err != nil {
		t.Fatalf("missing golden: %v", err)
	}
	sys := realrate.NewSystem(realrate.Config{})
	tr := sys.EnableTracing(0)
	conformancePipeline(t, sys)
	sys.Run(2 * time.Second)

	var sb strings.Builder
	if err := tr.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.String() != string(want) {
		t.Fatalf("dispatch trace diverged from pre-redesign golden (%d bytes vs %d)",
			sb.Len(), len(want))
	}
}

// TestSMPOneCPUGoldenEquivalence is the differential anchor of the SMP
// refactor: a machine built with an explicit Config.CPUs=1 must produce a
// dispatch trace byte-identical to the committed pre-SMP golden — the
// per-CPU run structures, the sharded dispatcher, and the capacity
// generalization must collapse exactly to the paper's single-CPU machine.
// (scripts/goldens.sh runs this alongside the Figure 5–8 byte-compares.)
func TestSMPOneCPUGoldenEquivalence(t *testing.T) {
	want, err := os.ReadFile("testdata/goldens/rbs_dispatch.golden")
	if err != nil {
		t.Fatalf("missing golden: %v", err)
	}
	sys := realrate.NewSystem(realrate.Config{CPUs: 1})
	tr := sys.EnableTracing(0)
	conformancePipeline(t, sys)
	sys.Run(2 * time.Second)

	var sb strings.Builder
	if err := tr.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.String() != string(want) {
		t.Fatalf("SMP kernel pinned to one CPU diverged from the pre-SMP golden (%d bytes vs %d)",
			sb.Len(), len(want))
	}
	if st := sys.Stats(); st.Migrations != 0 {
		t.Fatalf("%d migrations on a single-CPU machine", st.Migrations)
	}
}

// TestTicketDegradation checks the documented Reserve degradation under
// ticket policies: proportions become tickets, so two reserved threads
// split the CPU in ticket proportion.
func TestTicketDegradation(t *testing.T) {
	sys := realrate.NewSystem(realrate.Config{Policy: realrate.Stride(10 * time.Millisecond)})
	big, err := sys.Spawn("big", realrate.HogProgram(400_000), realrate.Reserve(600, 10*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	small, err := sys.Spawn("small", realrate.HogProgram(400_000), realrate.Reserve(200, 10*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(5 * time.Second)
	ratio := big.CPUTime().Seconds() / small.CPUTime().Seconds()
	if ratio < 2.5 || ratio > 3.5 {
		t.Fatalf("stride split %.2f, want ≈3 (600:200 tickets)", ratio)
	}
}

// TestExplicitTicketsAndNice exercises the Tickets and Nice spawn options
// on the policies that take them, and their rejection elsewhere.
func TestExplicitTicketsAndNice(t *testing.T) {
	lot := realrate.Lottery(10*time.Millisecond, 7)
	sys := realrate.NewSystem(realrate.Config{Policy: lot})
	a, err := sys.Spawn("a", realrate.HogProgram(400_000), realrate.Tickets(900))
	if err != nil {
		t.Fatal(err)
	}
	b, err := sys.Spawn("b", realrate.HogProgram(400_000), realrate.Tickets(100))
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(5 * time.Second)
	if a.CPUTime() <= 4*b.CPUTime() {
		t.Fatalf("lottery ignored tickets: a=%v b=%v", a.CPUTime(), b.CPUTime())
	}

	lin := realrate.NewSystem(realrate.Config{Policy: realrate.Linux()})
	if _, err := lin.Spawn("nice", realrate.HogProgram(400_000), realrate.Nice(10)); err != nil {
		t.Fatalf("Nice rejected under linux: %v", err)
	}
	if _, err := lin.Spawn("t", realrate.HogProgram(400_000), realrate.Tickets(10)); err == nil {
		t.Fatal("Tickets accepted under linux policy")
	}

	rbs := realrate.NewSystem(realrate.Config{})
	if _, err := rbs.Spawn("t", realrate.HogProgram(400_000), realrate.Tickets(10)); err == nil {
		t.Fatal("Tickets accepted under rbs policy")
	}
	if _, err := rbs.Spawn("n", realrate.HogProgram(400_000), realrate.Nice(1)); err == nil {
		t.Fatal("Nice accepted under rbs policy")
	}
}

// TestSpawnOptionConflicts checks that the mutually-exclusive class
// options are rejected with a clear error.
func TestSpawnOptionConflicts(t *testing.T) {
	sys := realrate.NewSystem(realrate.Config{})
	_, err := sys.Spawn("x", realrate.HogProgram(1000),
		realrate.Miscellaneous(), realrate.Interactive())
	if err == nil || !strings.Contains(err.Error(), "conflicting spawn options") {
		t.Fatalf("conflict not rejected: %v", err)
	}
	q := sys.NewQueue("q", 1024)
	_, err = sys.Spawn("y", realrate.HogProgram(1000),
		realrate.Reserve(100, 10*time.Millisecond),
		realrate.RealRate(0, realrate.ConsumerOf(q)))
	if err == nil {
		t.Fatal("Reserve+RealRate accepted")
	}
	if _, err := sys.Spawn("z", realrate.HogProgram(1000), realrate.RealRate(0)); err == nil {
		t.Fatal("RealRate with no sources accepted")
	}
	if _, err := sys.Spawn("w", realrate.HogProgram(1000), realrate.Unmanaged(), realrate.Importance(2)); err == nil {
		t.Fatal("Importance on unmanaged thread accepted")
	}
}

// TestRejectedSpawnDoesNotRun guards the error paths of Spawn: a thread
// whose registration fails must be fully retired from the kernel, not
// left running in the leftover CPU with no public handle.
func TestRejectedSpawnDoesNotRun(t *testing.T) {
	sys := realrate.NewSystem(realrate.Config{})
	if _, err := sys.Spawn("ok", realrate.HogProgram(400_000), realrate.Reserve(400, 10*time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Spawn("rejected", realrate.HogProgram(400_000), realrate.Reserve(800, 10*time.Millisecond)); err == nil {
		t.Fatal("oversubscription accepted")
	}
	// A failed option on an otherwise valid spawn leaks the same way.
	if _, err := sys.Spawn("badopt", realrate.HogProgram(400_000), realrate.Unmanaged(), realrate.Importance(2)); err == nil {
		t.Fatal("Importance on unmanaged accepted")
	}
	sys.Run(2 * time.Second)

	// Only the admitted 400-ppt hog runs: the machine must idle for
	// roughly the other 60%. If a rejected thread leaked into the
	// scheduler it would soak up all of it.
	if idle := sys.Stats().Idle; idle < time.Second {
		t.Fatalf("idle = %v; a rejected spawn is consuming the leftover CPU", idle)
	}

	// Mid-run rejection too: the kernel is live, so the leaked thread
	// would otherwise start running immediately.
	before := sys.Stats().Idle
	if _, err := sys.Spawn("late", realrate.HogProgram(400_000), realrate.Reserve(900, 10*time.Millisecond)); err == nil {
		t.Fatal("late oversubscription accepted")
	}
	sys.Run(time.Second)
	if gained := sys.Stats().Idle - before; gained < 400*time.Millisecond {
		t.Fatalf("idle gained only %v after mid-run rejection", gained)
	}
}

// TestImportanceWithInJobRejected pins the explicit error for the
// ambiguous combination (importance belongs to the job, not one member).
func TestImportanceWithInJobRejected(t *testing.T) {
	sys := realrate.NewSystem(realrate.Config{})
	lead, err := sys.Spawn("lead", realrate.HogProgram(400_000))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Spawn("member", realrate.HogProgram(400_000),
		realrate.InJob(lead), realrate.Importance(4)); err == nil {
		t.Fatal("InJob+Importance silently accepted")
	}
}

// TestCustomProgressSource drives a real-rate thread from a
// user-implemented ProgressSource — §4.5's "any measurable work unit" —
// and checks the controller reacts to its pressure.
func TestCustomProgressSource(t *testing.T) {
	sys := realrate.NewSystem(realrate.Config{})
	src := &constantPressure{p: 0.4} // permanently behind: allocation must grow
	th, err := sys.Spawn("custom", realrate.HogProgram(100_000),
		realrate.RealRate(20*time.Millisecond, src))
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(2 * time.Second)
	if th.Class() != "real-rate" {
		t.Fatalf("class = %q", th.Class())
	}
	if a := th.Allocation(); a < 300 {
		t.Fatalf("allocation %d ppt; sustained positive pressure should have grown it", a)
	}
	if src.samples == 0 {
		t.Fatal("custom source never sampled")
	}

	// Out-of-range pressures are clamped before they reach the controller.
	sys2 := realrate.NewSystem(realrate.Config{})
	wild := &constantPressure{p: 37}
	th2, err := sys2.Spawn("wild", realrate.HogProgram(100_000),
		realrate.RealRate(20*time.Millisecond, wild))
	if err != nil {
		t.Fatal(err)
	}
	sys2.Run(time.Second)
	if p := th2.Pressure(); p > 60 {
		t.Fatalf("unclamped pressure reached the filter: %v", p)
	}
}

// constantPressure is a trivial user-defined ProgressSource.
type constantPressure struct {
	p       float64
	samples int
}

func (c *constantPressure) Pressure(now time.Duration) float64 {
	c.samples++
	return c.p
}

func (c *constantPressure) Describe() string { return "constant" }
