// Churn-recycling correctness tests for the pooled spawn→exit life
// cycle: a storm of Spawn/Kill/Renegotiate cycles must behave exactly
// like the non-pooled build (byte-identical dispatch traces), retired
// handles must freeze their final statistics, and use-after-retire must
// fail deterministically — a named panic, not silent corruption of the
// slot's next occupant.
package realrate_test

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	realrate "repro"
)

// shortProg returns a program that computes for a few steps and exits
// voluntarily.
func shortProg(steps int) realrate.Program {
	n := 0
	return realrate.ProgramFunc(func(th *realrate.Thread, now time.Duration) realrate.Action {
		n++
		if n > steps {
			return realrate.Exit()
		}
		return realrate.Compute(200_000)
	})
}

// runChurnStorm drives a deterministic mixed-class churn scenario on sys:
// a long-lived pipeline plus periodic waves of short-lived reserved,
// miscellaneous, interactive, and unmanaged threads, some killed mid-life
// and some renegotiated. Returns the handles of every churned thread.
func runChurnStorm(tb testing.TB, sys *realrate.System, dur time.Duration) []*realrate.Thread {
	tb.Helper()
	// Long-lived pipeline: a reserved producer and a real-rate consumer
	// that outlive every churn wave, so recycling happens around — and
	// must not perturb — steady controlled threads.
	pipe := sys.NewQueue("pipe", 1<<20)
	pc := true
	producer := realrate.ProgramFunc(func(th *realrate.Thread, now time.Duration) realrate.Action {
		pc = !pc
		if pc {
			return realrate.Compute(400_000)
		}
		return realrate.Produce(pipe, 20_000)
	})
	cc := true
	consumer := realrate.ProgramFunc(func(th *realrate.Thread, now time.Duration) realrate.Action {
		cc = !cc
		if cc {
			return realrate.Consume(pipe, 4096)
		}
		return realrate.Compute(40 * 4096)
	})
	if _, err := sys.Spawn("producer", producer, realrate.Reserve(100, 10*time.Millisecond)); err != nil {
		tb.Fatal(err)
	}
	sys.SpawnRealRate("consumer", consumer, 0, realrate.ConsumerOf(pipe))

	var churned []*realrate.Thread
	step := 0
	sys.Every(10*time.Millisecond, func(now time.Duration) {
		step++
		name := fmt.Sprintf("churn%d", step%7) // interned small name set
		var th *realrate.Thread
		var err error
		switch step % 4 {
		case 0:
			th, err = sys.Spawn(name, shortProg(4), realrate.Reserve(20, 10*time.Millisecond))
		case 1:
			th, err = sys.Spawn(name, shortProg(6), realrate.Miscellaneous())
		case 2:
			th, err = sys.Spawn(name, shortProg(3), realrate.Interactive())
		default:
			th, err = sys.Spawn(name, shortProg(5), realrate.Unmanaged())
		}
		if err != nil {
			return // admission veto under load is fine; keep churning
		}
		churned = append(churned, th)
		if step%3 == 0 {
			// Kill an earlier spawn mid-life (no-op if already exited).
			churned[len(churned)/2].Kill()
		}
		if step%4 == 0 && !th.Exited() {
			_ = th.Renegotiate(10) // shrink the fresh reservation
		}
	})
	sys.Run(dur)
	return churned
}

// TestChurnRecyclingStress runs the churn storm with pools on (the
// default) and checks the recycling survives: exited handles freeze
// coherent final statistics, live handles still actuate, and the
// spawn→exit cycle keeps reissuing slots without corrupting classes.
func TestChurnRecyclingStress(t *testing.T) {
	sys := realrate.NewSystem(realrate.Config{})
	churned := runChurnStorm(t, sys, 3*time.Second)

	if len(churned) < 200 {
		t.Fatalf("storm only spawned %d churn threads", len(churned))
	}
	exited := 0
	for _, th := range churned {
		if !th.Exited() {
			continue
		}
		exited++
		// Frozen accessors must stay readable and self-consistent long
		// after the kernel slot was reissued to later spawns.
		if th.State() != "exited" {
			t.Fatalf("exited handle %q reports state %q", th.Name(), th.State())
		}
		if th.CPUTime() < 0 {
			t.Fatalf("exited handle %q reports negative CPU time", th.Name())
		}
		if c := th.Class(); c == "" {
			t.Fatalf("exited handle %q lost its class", th.Name())
		}
		th.Kill() // Kill on an exited handle must stay a no-op
	}
	if exited < len(churned)/2 {
		t.Fatalf("only %d/%d churn threads exited", exited, len(churned))
	}
}

// TestUseAfterRetirePanics pins the deterministic failure mode: mutating
// a retired thread panics with a message naming the retired generation,
// instead of silently reaching into a recycled slot.
func TestUseAfterRetirePanics(t *testing.T) {
	mustPanic := func(t *testing.T, want string, fn func()) {
		t.Helper()
		defer func() {
			r := recover()
			if r == nil {
				t.Fatalf("no panic; want one mentioning %q", want)
			}
			if msg := fmt.Sprint(r); !strings.Contains(msg, want) {
				t.Fatalf("panic %q does not mention %q", msg, want)
			}
		}()
		fn()
	}

	t.Run("renegotiate", func(t *testing.T) {
		sys := realrate.NewSystem(realrate.Config{})
		th, err := sys.Spawn("victim", shortProg(2), realrate.Reserve(100, 10*time.Millisecond))
		if err != nil {
			t.Fatal(err)
		}
		sys.Run(time.Second) // let it exit; churn more spawns through the slot
		for i := 0; i < 5; i++ {
			if _, err := sys.Spawn("squatter", shortProg(2), realrate.Reserve(50, 10*time.Millisecond)); err != nil {
				t.Fatal(err)
			}
			sys.Run(time.Second)
		}
		if !th.Exited() {
			t.Fatal("victim never exited")
		}
		mustPanic(t, "retired", func() { _ = th.Renegotiate(50) })
	})

	t.Run("set-importance", func(t *testing.T) {
		sys := realrate.NewSystem(realrate.Config{})
		th, err := sys.Spawn("victim", shortProg(2), realrate.Miscellaneous())
		if err != nil {
			t.Fatal(err)
		}
		sys.Run(time.Second)
		if !th.Exited() {
			t.Fatal("victim never exited")
		}
		mustPanic(t, "retired", func() { th.SetImportance(3) })
	})

	t.Run("kill-is-noop", func(t *testing.T) {
		sys := realrate.NewSystem(realrate.Config{})
		th, err := sys.Spawn("victim", shortProg(2), realrate.Miscellaneous())
		if err != nil {
			t.Fatal(err)
		}
		sys.Run(time.Second)
		th.Kill() // must not panic: killing an exited thread is declared a no-op
	})

	t.Run("spawn-into-exited-job", func(t *testing.T) {
		sys := realrate.NewSystem(realrate.Config{})
		th, err := sys.Spawn("primary", shortProg(2), realrate.Reserve(100, 10*time.Millisecond))
		if err != nil {
			t.Fatal(err)
		}
		sys.Run(time.Second)
		if _, err := sys.Spawn("late-member", shortProg(2), realrate.InJob(th)); err == nil {
			t.Fatal("spawning into an exited thread's job succeeded")
		}
	})
}

// churnTraceCSV runs the deterministic churn storm with tracing enabled
// and returns the raw dispatch-trace CSV.
func churnTraceCSV(tb testing.TB, disablePools bool) []byte {
	tb.Helper()
	sys := realrate.NewSystem(realrate.Config{DisablePools: disablePools})
	tr := sys.EnableTracing(0)
	runChurnStorm(tb, sys, 2*time.Second)
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// TestChurnTraceIdenticalPoolsOnOff is the pooling ground truth: free-list
// recycling of kernel threads, scheduler state, and controller jobs must
// not move a single dispatch edge. The same churn storm runs with pools
// on and off — toggling only Config.DisablePools — and the raw scheduler
// traces must match byte for byte.
func TestChurnTraceIdenticalPoolsOnOff(t *testing.T) {
	pooled := churnTraceCSV(t, false)
	unpooled := churnTraceCSV(t, true)
	if !bytes.Equal(pooled, unpooled) {
		i := 0
		for i < len(pooled) && i < len(unpooled) && pooled[i] == unpooled[i] {
			i++
		}
		lo := i - 100
		if lo < 0 {
			lo = 0
		}
		hp, hu := i+100, i+100
		if hp > len(pooled) {
			hp = len(pooled)
		}
		if hu > len(unpooled) {
			hu = len(unpooled)
		}
		t.Fatalf("dispatch traces diverge at byte %d:\npooled:   …%s…\nunpooled: …%s…",
			i, pooled[lo:hp], unpooled[lo:hu])
	}
	if len(pooled) == 0 {
		t.Fatal("empty trace: the storm never dispatched")
	}
}
