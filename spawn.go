package realrate

import (
	"fmt"
	"time"

	"repro/internal/kernel"
	"repro/internal/sim"
)

// spawnClass is the Figure 2 taxonomy slot a SpawnOption selects.
type spawnClass int

const (
	classDefault spawnClass = iota // no class option: miscellaneous
	classReserve
	classAperiodic
	classRealRate
	classInteractive
	classMisc
	classUnmanaged
	classMember
)

func (c spawnClass) String() string {
	switch c {
	case classReserve:
		return "Reserve"
	case classAperiodic:
		return "Aperiodic"
	case classRealRate:
		return "RealRate"
	case classInteractive:
		return "Interactive"
	case classMisc:
		return "Miscellaneous"
	case classUnmanaged:
		return "Unmanaged"
	case classMember:
		return "InJob"
	default:
		return "default"
	}
}

// spawnSpec accumulates the options of one Spawn call.
type spawnSpec struct {
	class   spawnClass
	ppt     int
	period  time.Duration
	sources []ProgressSource
	member  *Thread

	importance    float64
	importanceSet bool
	tickets       int64
	ticketsSet    bool
	nice          int
	niceSet       bool
	// affinity pins the thread to one CPU; kernel.AffinityAny (the
	// default) lets the machine place and migrate it.
	affinity    int
	affinitySet bool
}

// setClass records a class-selecting option, rejecting conflicts.
func (sp *spawnSpec) setClass(c spawnClass) error {
	if sp.class != classDefault {
		return fmt.Errorf("realrate: conflicting spawn options %s and %s", sp.class, c)
	}
	sp.class = c
	return nil
}

// SpawnOption configures one Spawn call. The class options — Reserve,
// Aperiodic, RealRate, Interactive, Miscellaneous, Unmanaged, InJob — are
// mutually exclusive; omitting them spawns a miscellaneous thread.
type SpawnOption func(*spawnSpec) error

// Reserve requests a hard reservation: proportion in parts-per-thousand
// over the given period (the paper's real-time class). Admission control
// may reject the request, in which case Spawn returns the error and the
// thread is not created.
func Reserve(proportion int, period time.Duration) SpawnOption {
	return func(sp *spawnSpec) error {
		sp.ppt = proportion
		sp.period = period
		return sp.setClass(classReserve)
	}
}

// Aperiodic requests an aperiodic real-time reservation: known proportion,
// no period; the controller assigns the 30 ms default.
func Aperiodic(proportion int) SpawnOption {
	return func(sp *spawnSpec) error {
		sp.ppt = proportion
		return sp.setClass(classAperiodic)
	}
}

// RealRate declares a real-rate thread: the controller estimates its
// proportion (and, with period 0, its period) from the given progress
// sources. At least one source is required.
func RealRate(period time.Duration, sources ...ProgressSource) SpawnOption {
	return func(sp *spawnSpec) error {
		if len(sources) == 0 {
			return fmt.Errorf("realrate: RealRate needs at least one progress source")
		}
		sp.period = period
		sp.sources = sources
		return sp.setClass(classRealRate)
	}
}

// Interactive declares a tty-server thread: small period, proportion
// estimated from its bursts.
func Interactive() SpawnOption {
	return func(sp *spawnSpec) error { return sp.setClass(classInteractive) }
}

// Miscellaneous declares a thread with no information at all (the default):
// the constant-pressure heuristic grows its allocation until satisfied or
// squished.
func Miscellaneous() SpawnOption {
	return func(sp *spawnSpec) error { return sp.setClass(classMisc) }
}

// Unmanaged spawns the thread outside the controller entirely; it runs in
// the leftover CPU below every registered thread, like unregistered jobs
// under the prototype's default Linux scheduler.
func Unmanaged() SpawnOption {
	return func(sp *spawnSpec) error { return sp.setClass(classUnmanaged) }
}

// InJob spawns the thread as a member of th's job: the paper's "job is a
// collection of cooperating threads". The job's allocation is split across
// its members; its progress and usage are their combined metrics and CPU.
func InJob(th *Thread) SpawnOption {
	return func(sp *spawnSpec) error {
		if th == nil {
			return fmt.Errorf("realrate: InJob(nil)")
		}
		sp.member = th
		return sp.setClass(classMember)
	}
}

// Importance sets the weighted-fair-share weight (default 1). Higher
// importance loses less under overload but can never starve others.
// Ignored under baseline policies, which have no squish.
func Importance(w float64) SpawnOption {
	return func(sp *spawnSpec) error {
		if w <= 0 {
			return fmt.Errorf("realrate: importance must be positive, got %v", w)
		}
		sp.importance = w
		sp.importanceSet = true
		return nil
	}
}

// Tickets assigns a share count to the thread under a ticket-based policy
// (Stride or Lottery). Spawning with Tickets under any other policy is an
// error.
func Tickets(n int64) SpawnOption {
	return func(sp *spawnSpec) error {
		if n <= 0 {
			return fmt.Errorf("realrate: tickets must be positive, got %d", n)
		}
		sp.tickets = n
		sp.ticketsSet = true
		return nil
	}
}

// Nice sets the thread's nice value under the Linux baseline policy.
// Spawning with Nice under any other policy is an error.
func Nice(n int) SpawnOption {
	return func(sp *spawnSpec) error {
		sp.nice = n
		sp.niceSet = true
		return nil
	}
}

// Affinity pins the thread to one CPU of a multi-CPU machine (see
// Config.CPUs): it is placed there, only ever dispatched there, and never
// migrated by work-pull. Spawning with a CPU outside [0, Config.CPUs) is
// an error. Composes with every class option.
//
// Pinning trades load balance for placement control: a pinned thread
// cannot be pulled to an idle CPU, so a pile-up behind another pinned
// thread is the caller's to resolve.
func Affinity(cpu int) SpawnOption {
	return func(sp *spawnSpec) error {
		if sp.affinitySet {
			return fmt.Errorf("realrate: conflicting Affinity/AnyCPU options")
		}
		if cpu < 0 {
			return fmt.Errorf("realrate: Affinity(%d): CPU must be non-negative", cpu)
		}
		sp.affinity = cpu
		sp.affinitySet = true
		return nil
	}
}

// AnyCPU declares the thread runnable on every CPU — the default. It
// exists to make the placement choice explicit at call sites that mix
// pinned and unpinned spawns.
func AnyCPU() SpawnOption {
	return func(sp *spawnSpec) error {
		if sp.affinitySet {
			return fmt.Errorf("realrate: conflicting Affinity/AnyCPU options")
		}
		sp.affinity = kernel.AffinityAny
		sp.affinitySet = true
		return nil
	}
}

// Spawn creates a thread running prog, classified by the given options
// (see the paper's Figure 2 taxonomy). With no class option the thread is
// miscellaneous. Spawn is the single entry point behind the deprecated
// SpawnRealTime/SpawnAperiodic/SpawnRealRate/SpawnMiscellaneous/
// SpawnInteractive/SpawnUnmanaged/SpawnIntoJob constructors.
//
// Under a baseline policy (see Config.Policy) there is no feedback
// controller: every class spawns a plain thread, and a Reserve or
// Aperiodic proportion degrades to the nearest share hint the policy can
// express (tickets equal to the requested ppt under Stride and Lottery;
// nothing under Linux and RoundRobin).
func (s *System) Spawn(name string, prog Program, opts ...SpawnOption) (*Thread, error) {
	sp := spawnSpec{affinity: kernel.AffinityAny}
	for _, opt := range opts {
		if err := opt(&sp); err != nil {
			return nil, err
		}
	}
	return s.spawnSpecd(name, prog, &sp)
}

// SpawnClass selects the Figure 2 taxonomy slot of a SpawnReq. The zero
// value is miscellaneous, mirroring Spawn with no class option.
type SpawnClass int

// SpawnReq classes, mirroring the Spawn class options.
const (
	// SpawnMisc declares nothing; the constant-pressure heuristic grows
	// the thread's allocation until satisfied or squished (the default).
	SpawnMisc SpawnClass = iota
	// SpawnReserve requests a hard reservation of Proportion over Period.
	SpawnReserve
	// SpawnAperiodic requests Proportion with the default period.
	SpawnAperiodic
	// SpawnRealRate has proportion (and, with Period 0, period) estimated
	// from Sources.
	SpawnRealRate
	// SpawnInteractive declares a tty-server thread.
	SpawnInteractive
	// SpawnUnmanaged runs outside the controller entirely.
	SpawnUnmanaged
	// SpawnMember joins the thread to Job's existing job.
	SpawnMember
)

// SpawnReq is the struct form of a Spawn call for allocation-sensitive
// callers: an open-loop storm driver can hold one SpawnReq (and its
// Sources backing array) and reuse it for every admission, where the
// variadic Spawn builds an options slice and a closure per option on each
// call. Semantics are identical to the equivalent Spawn options.
type SpawnReq struct {
	// Class selects the taxonomy slot; the zero value is miscellaneous.
	Class SpawnClass
	// Proportion (ppt) applies to SpawnReserve and SpawnAperiodic.
	Proportion int
	// Period applies to SpawnReserve (required) and SpawnRealRate
	// (0 lets the controller assign it).
	Period time.Duration
	// Sources are the progress sources of a SpawnRealRate thread.
	Sources []ProgressSource
	// Job is the primary thread whose job a SpawnMember thread joins.
	Job *Thread
	// Importance, when nonzero, sets the weighted-fair-share weight.
	Importance float64
	// Pinned pins the thread to CPU (Pinned false ignores CPU and lets
	// the machine place and migrate the thread).
	Pinned bool
	CPU    int
}

// SpawnFrom creates a thread running prog, classified by req. It is
// Spawn for hot paths: no option closures, no variadic slice, and a spec
// that never escapes to the heap.
func (s *System) SpawnFrom(name string, prog Program, req *SpawnReq) (*Thread, error) {
	sp := spawnSpec{affinity: kernel.AffinityAny}
	switch req.Class {
	case SpawnMisc:
		sp.class = classMisc
	case SpawnReserve:
		sp.class = classReserve
		sp.ppt, sp.period = req.Proportion, req.Period
	case SpawnAperiodic:
		sp.class = classAperiodic
		sp.ppt = req.Proportion
	case SpawnRealRate:
		if len(req.Sources) == 0 {
			return nil, fmt.Errorf("realrate: SpawnRealRate needs at least one progress source")
		}
		sp.class = classRealRate
		sp.period, sp.sources = req.Period, req.Sources
	case SpawnInteractive:
		sp.class = classInteractive
	case SpawnUnmanaged:
		sp.class = classUnmanaged
	case SpawnMember:
		if req.Job == nil {
			return nil, fmt.Errorf("realrate: SpawnMember needs a Job thread")
		}
		sp.class = classMember
		sp.member = req.Job
	default:
		return nil, fmt.Errorf("realrate: unknown SpawnClass %d", req.Class)
	}
	if req.Importance != 0 {
		if req.Importance < 0 {
			return nil, fmt.Errorf("realrate: importance must be positive, got %v", req.Importance)
		}
		sp.importance, sp.importanceSet = req.Importance, true
	}
	if req.Pinned {
		if req.CPU < 0 {
			return nil, fmt.Errorf("realrate: Affinity(%d): CPU must be non-negative", req.CPU)
		}
		sp.affinity, sp.affinitySet = req.CPU, true
	}
	return s.spawnSpecd(name, prog, &sp)
}

// spawnSpecd is the class dispatch shared by Spawn and SpawnFrom.
func (s *System) spawnSpecd(name string, prog Program, sp *spawnSpec) (*Thread, error) {
	if sp.affinity != kernel.AffinityAny && sp.affinity >= s.kern.NumCPUs() {
		return nil, fmt.Errorf("realrate: Affinity(%d) outside the machine's %d CPUs", sp.affinity, s.kern.NumCPUs())
	}
	if s.ctl == nil {
		return s.spawnBaseline(name, prog, sp)
	}
	if sp.ticketsSet || sp.niceSet {
		return nil, fmt.Errorf("realrate: Tickets/Nice apply to baseline policies, not %s", s.policy.Name())
	}

	// Overload backpressure: at the governor's throttle rung and above,
	// new controller-managed admissions are refused with a typed
	// *OverloadError carrying a retry-after hint — the caller gets
	// backpressure instead of joining an already-saturated squish.
	// Unmanaged threads (outside the controller) and members joining an
	// existing job are not new admissions.
	if sp.class != classUnmanaged && sp.class != classMember {
		if err := s.ctl.AdmissionVeto(); err != nil {
			s.fireAdmission(AdmissionEvent{
				Time: s.Now(), Requested: sp.ppt, Period: sp.period,
				Accepted: false, Err: err,
			})
			return nil, err
		}
	}

	if sp.class == classMember {
		if sp.member.exited {
			return nil, fmt.Errorf("realrate: cannot add members to job of exited thread %q", sp.member.name)
		}
		if sp.member.job == nil {
			return nil, fmt.Errorf("realrate: cannot add members to an unmanaged thread")
		}
		if sp.importanceSet {
			// Importance belongs to the whole job, not one member; silently
			// reweighting the job here would be surprising.
			return nil, fmt.Errorf("realrate: Importance cannot be combined with InJob; set it on the job's primary thread")
		}
		member := s.spawn(name, prog, sp.affinity)
		member.job = sp.member.job
		s.ctl.AddMember(member.job, member.t)
		return member, nil
	}

	th := s.spawn(name, prog, sp.affinity)
	switch sp.class {
	case classReserve:
		job, err := s.ctl.AddRealTime(th.t, sp.ppt, sim.FromStd(sp.period))
		s.fireAdmission(AdmissionEvent{
			Time: s.Now(), Thread: th, Requested: sp.ppt, Period: sp.period,
			Accepted: err == nil, Err: err,
		})
		if err != nil {
			// Retire the just-created thread; it never ran.
			s.removeThread(th)
			return nil, err
		}
		th.job = job
	case classAperiodic:
		job, err := s.ctl.AddAperiodicRealTime(th.t, sp.ppt)
		s.fireAdmission(AdmissionEvent{
			Time: s.Now(), Thread: th, Requested: sp.ppt,
			Accepted: err == nil, Err: err,
		})
		if err != nil {
			s.removeThread(th)
			return nil, err
		}
		th.job = job
	case classRealRate:
		for _, src := range sp.sources {
			s.registerSource(th, src)
		}
		th.job = s.ctl.AddRealRate(th.t, sim.FromStd(sp.period))
	case classInteractive:
		th.job = s.ctl.AddInteractive(th.t)
	case classUnmanaged:
		// Outside the controller: job stays nil.
	default: // classMisc and no class option
		th.job = s.ctl.AddMiscellaneous(th.t)
	}
	if sp.importanceSet {
		if th.job == nil {
			s.removeThread(th)
			return nil, fmt.Errorf("realrate: importance needs a controller-managed thread")
		}
		s.ctl.SetImportance(th.job, sp.importance)
	}
	return th, nil
}

// spawnBaseline creates a thread under a controller-less baseline policy,
// mapping the spec to whatever the policy can express.
func (s *System) spawnBaseline(name string, prog Program, sp *spawnSpec) (*Thread, error) {
	if sp.class == classMember {
		return nil, fmt.Errorf("realrate: policy %s has no jobs; spawn a plain thread instead", s.policy.Name())
	}
	th := s.spawn(name, prog, sp.affinity)
	for _, src := range sp.sources {
		// Progress sources still register, so tools can sample pressure
		// even though no controller consumes it.
		s.registerSource(th, src)
	}
	if sp.ticketsSet {
		tp, ok := s.ticketPolicy()
		if !ok {
			s.removeThread(th)
			return nil, fmt.Errorf("realrate: policy %s does not take tickets", s.policy.Name())
		}
		tp.SetTickets(th.t, sp.tickets)
	} else if (sp.class == classReserve || sp.class == classAperiodic) && sp.ppt > 0 {
		// Degrade a reservation to a proportional share where possible.
		if tp, ok := s.ticketPolicy(); ok {
			tp.SetTickets(th.t, int64(sp.ppt))
		}
	}
	if sp.niceSet {
		lp, ok := s.policy.(interface{ SetNice(*kernel.Thread, int) })
		if !ok {
			s.removeThread(th)
			return nil, fmt.Errorf("realrate: policy %s does not take nice values", s.policy.Name())
		}
		lp.SetNice(th.t, sp.nice)
	}
	return th, nil
}

// ticketPolicy returns the underlying ticket-share setter when the
// system's policy is stride or lottery.
func (s *System) ticketPolicy() (interface{ SetTickets(*kernel.Thread, int64) }, bool) {
	tp, ok := s.policy.(interface{ SetTickets(*kernel.Thread, int64) })
	return tp, ok
}
