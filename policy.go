package realrate

import (
	"time"

	"repro/internal/baseline"
	"repro/internal/kernel"
	"repro/internal/rbs"
	"repro/internal/sim"
)

// Policy is a pluggable scheduling discipline for a System — the seam the
// paper's comparative claims rest on: the same machine, workload, and
// symbiotic interfaces can run under the feedback-driven reservation
// scheduler or under any of the classical baselines it is measured
// against.
//
// The interface is exactly the kernel scheduler contract, so every
// scheduler in this module (the reservation dispatcher and the four
// baselines) satisfies it as-is. Construct policies with RBS (the paper's
// scheduler, and the default), Stride, Lottery, Linux, or RoundRobin, and
// select one via Config.Policy. A Policy instance drives exactly one
// System; do not share one between systems.
//
// Only RBS carries the feedback controller: under a baseline policy the
// System has no proportion allocator, the Figure 2 taxonomy options
// (Reserve, RealRate, …) degrade to share hints where the policy can
// express them (see Spawn), and quality events are never raised.
type Policy interface {
	kernel.Policy
}

// kernelPolicyHolder lets NewSystem unwrap a public wrapper to the raw
// internal policy, keeping the kernel's Pick/Charge/Tick hot path free of
// wrapper indirection.
type kernelPolicyHolder interface {
	kernelPolicy() kernel.Policy
}

// RBSPolicy is the paper's reservation-based scheduler: proportion/period
// reservations dispatched earliest-deadline-first with budget enforcement,
// actuated by the feedback controller.
type RBSPolicy struct {
	*rbs.Policy
}

// RBS returns the reservation-based scheduler of the paper. Selecting it
// (or leaving Config.Policy nil) gives the System the full feedback stack:
// progress registry, proportion/period controller, admission control, and
// quality exceptions.
func RBS() *RBSPolicy { return &RBSPolicy{Policy: rbs.New()} }

func (p *RBSPolicy) kernelPolicy() kernel.Policy { return p.Policy }

// TicketPolicy is implemented by the policies whose shares are expressed
// as tickets — Stride and Lottery. The Tickets spawn option and the
// Reserve-to-tickets degradation use it.
type TicketPolicy interface {
	Policy
	// SetThreadTickets assigns n tickets to a thread spawned on this
	// policy's System.
	SetThreadTickets(th *Thread, n int64)
}

// StridePolicy is the stride-scheduling baseline: deterministic
// proportional share via per-thread pass values.
type StridePolicy struct {
	*baseline.Stride
}

// Stride returns a stride-scheduling policy with the given quantum
// (non-positive defaults to 10ms).
func Stride(quantum time.Duration) *StridePolicy {
	return &StridePolicy{Stride: baseline.NewStride(sim.FromStd(quantum))}
}

func (p *StridePolicy) kernelPolicy() kernel.Policy { return p.Stride }

// SetThreadTickets implements TicketPolicy.
func (p *StridePolicy) SetThreadTickets(th *Thread, n int64) { p.Stride.SetTickets(th.t, n) }

// LotteryPolicy is the lottery-scheduling baseline: randomized proportional
// share, the probabilistic twin of stride.
type LotteryPolicy struct {
	*baseline.Lottery
}

// Lottery returns a lottery-scheduling policy with the given quantum
// (non-positive defaults to 10ms) and PRNG seed.
func Lottery(quantum time.Duration, seed uint64) *LotteryPolicy {
	return &LotteryPolicy{Lottery: baseline.NewLottery(sim.FromStd(quantum), seed)}
}

func (p *LotteryPolicy) kernelPolicy() kernel.Policy { return p.Lottery }

// SetThreadTickets implements TicketPolicy.
func (p *LotteryPolicy) SetThreadTickets(th *Thread, n int64) { p.Lottery.SetTickets(th.t, n) }

// LinuxPolicy is the Linux 2.0.35 goodness scheduler the paper's prototype
// replaced: multilevel-feedback counter decay, nice values, and a fixed
// real-time (SCHED_FIFO) class above the time-sharing class.
type LinuxPolicy struct {
	*baseline.Linux
}

// Linux returns the Linux 2.0-style goodness policy.
func Linux() *LinuxPolicy {
	return &LinuxPolicy{Linux: baseline.NewLinux()}
}

func (p *LinuxPolicy) kernelPolicy() kernel.Policy { return p.Linux }

// SetThreadNice adjusts a thread's nice value (−20..19).
func (p *LinuxPolicy) SetThreadNice(th *Thread, nice int) { p.Linux.SetNice(th.t, nice) }

// SetThreadRealtime moves a thread into the fixed-priority SCHED_FIFO
// class — the configuration whose priority-inversion failure the Mars
// Pathfinder scenario reproduces.
func (p *LinuxPolicy) SetThreadRealtime(th *Thread, rtprio int) { p.Linux.SetRealtime(th.t, rtprio) }

// RoundRobinPolicy is the neutral comparator: equal fixed quanta in FIFO
// order, no information used at all.
type RoundRobinPolicy struct {
	*baseline.RoundRobin
}

// RoundRobin returns a round-robin policy with the given quantum
// (non-positive defaults to 10ms).
func RoundRobin(quantum time.Duration) *RoundRobinPolicy {
	return &RoundRobinPolicy{RoundRobin: baseline.NewRoundRobin(sim.FromStd(quantum))}
}

func (p *RoundRobinPolicy) kernelPolicy() kernel.Policy { return p.RoundRobin }
