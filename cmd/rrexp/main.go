// Command rrexp regenerates the paper's evaluation: one sub-experiment per
// figure (5–8) plus the §2 motivation scenarios. It prints paper-style
// tables and can dump the underlying series as CSV for plotting.
//
// Usage:
//
//	rrexp -fig 5            # controller overhead vs. controlled processes
//	rrexp -fig 6 -csv out/  # controller responsiveness (pulse pipeline)
//	rrexp -fig 7            # response under competing load (squish)
//	rrexp -fig 8            # dispatch overhead vs. frequency
//	rrexp -pathfinder       # Mars Pathfinder priority inversion
//	rrexp -livelock         # spin-wait livelock
//	rrexp -all              # everything
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/experiments"
	"repro/internal/sim"
)

func main() {
	var (
		fig        = flag.Int("fig", 0, "figure to reproduce (5, 6, 7, or 8)")
		all        = flag.Bool("all", false, "run every experiment")
		pathfinder = flag.Bool("pathfinder", false, "run the Mars Pathfinder scenario")
		livelock   = flag.Bool("livelock", false, "run the spin-wait livelock scenario")
		csvDir     = flag.String("csv", "", "directory to write CSV series into")
		ablate     = flag.Bool("ablate", false, "run the design-choice ablations")
		variance   = flag.Bool("variance", false, "run the allocation-variance comparison")
		freq       = flag.Bool("freq", false, "run the controller-frequency sweep")
		inter      = flag.Bool("interactive", false, "run the interactive-latency comparison")
		quick      = flag.Bool("quick", false, "shorter runs (for smoke testing)")
		seq        = flag.Bool("seq", false, "disable the parallel sweep runner (results are identical; serial is slower)")
	)
	flag.Parse()
	experiments.SetParallel(!*seq)

	if !*all && *fig == 0 && !*pathfinder && !*livelock && !*ablate && !*variance && !*freq && !*inter {
		flag.Usage()
		os.Exit(2)
	}

	dump := func(name string, write func(w io.Writer) error) {
		if *csvDir == "" {
			return
		}
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		path := filepath.Join(*csvDir, name)
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := write(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", path)
	}

	runDur := func(normal sim.Duration) sim.Duration {
		if *quick {
			return normal / 4
		}
		return normal
	}

	if *all || *fig == 5 {
		cfg := experiments.Fig5Config{RunFor: runDur(20 * sim.Second)}
		res := experiments.RunFig5(cfg)
		res.Print(os.Stdout)
		dump("fig5.csv", res.WriteCSV)
	}
	if *all || *fig == 6 {
		cfg := experiments.PipelineConfig{Duration: runDur(40 * sim.Second)}
		res := experiments.RunPipeline(cfg)
		res.Print(os.Stdout, "Figure 6: Controller Responsiveness")
		dump("fig6.csv", res.WriteCSV)
	}
	if *all || *fig == 7 {
		cfg := experiments.PipelineConfig{Duration: runDur(40 * sim.Second), WithHog: true}
		res := experiments.RunPipeline(cfg)
		res.Print(os.Stdout, "Figure 7: Controller Response Under Load")
		dump("fig7.csv", res.WriteCSV)
	}
	if *all || *fig == 8 {
		cfg := experiments.Fig8Config{RunFor: runDur(5 * sim.Second)}
		res := experiments.RunFig8(cfg)
		res.Print(os.Stdout)
		dump("fig8.csv", res.WriteCSV)
	}
	if *all || *pathfinder {
		res := experiments.RunPathfinder(runDur(60 * sim.Second))
		res.Print(os.Stdout)
	}
	if *all || *livelock {
		res := experiments.RunLivelock(runDur(10 * sim.Second))
		res.Print(os.Stdout)
	}
	if *all || *variance {
		res := experiments.RunVariance(runDur(30 * sim.Second))
		res.Print(os.Stdout)
	}
	if *all || *inter {
		res := experiments.RunInteractiveLatency(runDur(20 * sim.Second))
		res.Print(os.Stdout)
	}
	if *all || *freq {
		res := experiments.RunFrequencySweep(nil, runDur(15*sim.Second))
		res.Print(os.Stdout)
	}
	if *all || *ablate {
		experiments.PrintAblations(os.Stdout, runDur(40*sim.Second))
	}
}
