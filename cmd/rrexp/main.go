// Command rrexp regenerates the paper's evaluation: one sub-experiment per
// figure (5–8) plus the §2 motivation scenarios. It prints paper-style
// tables and can dump the underlying series as CSV for plotting. It is
// also the replay vehicle for the generated-workload invariant harness:
// a failing seed reported by the harness reproduces with the exact
// command line it printed.
//
// Usage:
//
//	rrexp -fig 5            # controller overhead vs. controlled processes
//	rrexp -fig 6 -csv out/  # controller responsiveness (pulse pipeline)
//	rrexp -fig 7            # response under competing load (squish)
//	rrexp -fig 8            # dispatch overhead vs. frequency
//	rrexp -pathfinder       # Mars Pathfinder priority inversion
//	rrexp -livelock         # spin-wait livelock
//	rrexp -openloop         # open-loop Poisson arrival sweep vs. policy
//	rrexp -openloop -cpus 4 # the same sweep on a 4-CPU machine
//	rrexp -churn            # admission-churn stress sweep vs. policy
//	rrexp -storm            # SMP storm: fixed backlog drained on 1/2/4/8 CPUs
//	rrexp -slo              # live-service SLO-attainment curves vs. offered load
//	rrexp -slo -sessions 100000 -controller event -cpus 8   # million-user-scale point
//	rrexp -all              # everything
//
//	rrexp -gen                                   # invariant harness: all families × seeds × policies
//	rrexp -gen -cpus 4                           # every family forced onto a 4-CPU machine
//	rrexp -gen -scenario churn -seed 17 -policy stride   # replay one failing seed
//	rrexp -gen -scenario mixed -seeds 50 -policy all     # wide sweep of one family
//	rrexp -gen -trace arrivals.csv -policy rbs           # replay a recorded arrival trace
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	realrate "repro"
	"repro/internal/experiments"
	"repro/internal/sim"
	"repro/internal/workload/gen"
)

func main() {
	var (
		fig        = flag.Int("fig", 0, "figure to reproduce (5, 6, 7, or 8)")
		all        = flag.Bool("all", false, "run every experiment")
		pathfinder = flag.Bool("pathfinder", false, "run the Mars Pathfinder scenario")
		livelock   = flag.Bool("livelock", false, "run the spin-wait livelock scenario")
		csvDir     = flag.String("csv", "", "directory to write CSV series into")
		ablate     = flag.Bool("ablate", false, "run the design-choice ablations")
		variance   = flag.Bool("variance", false, "run the allocation-variance comparison")
		freq       = flag.Bool("freq", false, "run the controller-frequency sweep")
		inter      = flag.Bool("interactive", false, "run the interactive-latency comparison")
		quick      = flag.Bool("quick", false, "shorter runs (for smoke testing)")
		seq        = flag.Bool("seq", false, "disable the parallel sweep runner (results are identical; serial is slower)")
		openloop   = flag.Bool("openloop", false, "run the open-loop arrival sweep")
		churn      = flag.Bool("churn", false, "run the admission-churn stress sweep")
		storm      = flag.Bool("storm", false, "run the SMP storm sweep (fixed backlog, time-to-drain vs. CPUs)")
		slo        = flag.Bool("slo", false, "run the live-service SLO-attainment sweep (attainment vs. offered load per policy × CPUs)")
		sessions   = flag.Int("sessions", 4000, "session count at offered load 1.0 for -slo")
		cpus       = flag.Int("cpus", 0, "machine CPU count for -openloop/-gen/-slo (0: each scenario's own; storm sweeps 1/2/4/8, slo sweeps 1/4/8)")

		genRun     = flag.Bool("gen", false, "run (or replay) generated scenarios through the invariant harness")
		scenario   = flag.String("scenario", "all", "generator family for -gen (or 'all'): "+fmt.Sprint(gen.Families()))
		seed       = flag.Uint64("seed", 0, "replay exactly this seed for -gen (0: sweep -seeds)")
		seeds      = flag.Int("seeds", 5, "number of seeds per family for -gen sweeps")
		policy     = flag.String("policy", "all", "policy for -gen (or 'all'): "+fmt.Sprint(gen.Policies()))
		scale      = flag.Float64("scale", 1, "workload scale for -gen (the shrinker's axis)")
		genDur     = flag.Duration("gendur", 0, "duration override for -gen (0: the family's drawn duration)")
		traceCSV   = flag.String("trace", "", "arrival trace CSV to replay for -gen (overrides the family's arrival process)")
		controller = flag.String("controller", "", "control-plane sampling mode for -gen: periodic (default) or event")
		shards     = flag.Int("shards", 0, "controller shard count for -gen (0 or 1: the classic single sweep)")

		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memprofile = flag.String("memprofile", "", "write a pprof heap (allocation) profile to this file at exit")
	)
	flag.Parse()
	experiments.SetParallel(!*seq)

	stopProfiles := startProfiles(*cpuprofile, *memprofile)

	if *genRun {
		code := runGenerated(*scenario, *seed, *seeds, *policy, *scale, *genDur, *traceCSV, *cpus, *controller, *shards)
		stopProfiles()
		os.Exit(code)
	}

	if !*all && *fig == 0 && !*pathfinder && !*livelock && !*ablate && !*variance && !*freq && !*inter && !*openloop && !*churn && !*storm && !*slo {
		flag.Usage()
		os.Exit(2)
	}

	dump := func(name string, write func(w io.Writer) error) {
		if *csvDir == "" {
			return
		}
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		path := filepath.Join(*csvDir, name)
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := write(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", path)
	}

	runDur := func(normal sim.Duration) sim.Duration {
		if *quick {
			return normal / 4
		}
		return normal
	}

	if *all || *fig == 5 {
		cfg := experiments.Fig5Config{RunFor: runDur(20 * sim.Second)}
		res := experiments.RunFig5(cfg)
		res.Print(os.Stdout)
		dump("fig5.csv", res.WriteCSV)
	}
	if *all || *fig == 6 {
		cfg := experiments.PipelineConfig{Duration: runDur(40 * sim.Second)}
		res := experiments.RunPipeline(cfg)
		res.Print(os.Stdout, "Figure 6: Controller Responsiveness")
		dump("fig6.csv", res.WriteCSV)
	}
	if *all || *fig == 7 {
		cfg := experiments.PipelineConfig{Duration: runDur(40 * sim.Second), WithHog: true}
		res := experiments.RunPipeline(cfg)
		res.Print(os.Stdout, "Figure 7: Controller Response Under Load")
		dump("fig7.csv", res.WriteCSV)
	}
	if *all || *fig == 8 {
		cfg := experiments.Fig8Config{RunFor: runDur(5 * sim.Second)}
		res := experiments.RunFig8(cfg)
		res.Print(os.Stdout)
		dump("fig8.csv", res.WriteCSV)
	}
	if *all || *pathfinder {
		res := experiments.RunPathfinder(runDur(60 * sim.Second))
		res.Print(os.Stdout)
	}
	if *all || *livelock {
		res := experiments.RunLivelock(runDur(10 * sim.Second))
		res.Print(os.Stdout)
	}
	if *all || *variance {
		res := experiments.RunVariance(runDur(30 * sim.Second))
		res.Print(os.Stdout)
	}
	if *all || *inter {
		res := experiments.RunInteractiveLatency(runDur(20 * sim.Second))
		res.Print(os.Stdout)
	}
	if *all || *freq {
		res := experiments.RunFrequencySweep(nil, runDur(15*sim.Second))
		res.Print(os.Stdout)
	}
	if *all || *openloop {
		res := experiments.RunOpenLoopSweep(nil, runDur(2*sim.Second), *cpus)
		res.Print(os.Stdout)
		dump("openloop.csv", res.WriteCSV)
	}
	if *all || *storm {
		var cc []int
		if *cpus > 0 {
			cc = []int{*cpus}
		}
		threads := []int{1000, 10000}
		if *quick {
			threads = []int{1000}
		}
		res := experiments.RunStormSMP(threads, cc, 0)
		res.Print(os.Stdout)
		dump("storm_smp.csv", res.WriteCSV)
	}
	if *slo {
		// Standalone (not under -all): the 100k+ points are scale runs,
		// sized by -sessions, not part of the figure regeneration.
		cfg := experiments.SLOConfig{
			Seed:       *seed,
			Sessions:   *sessions,
			Controller: *controller,
			Shards:     *shards,
			Duration:   time.Duration(runDur(sim.Second)),
		}
		if *quick {
			cfg.Sessions = *sessions / 4
		}
		if *cpus > 0 {
			cfg.CPUs = []int{*cpus}
		}
		if *policy != "all" {
			cfg.Policies = []string{*policy}
		}
		res := experiments.RunSLOSweep(cfg)
		res.Print(os.Stdout)
		dump("slo.csv", res.WriteCSV)
	}
	if *all || *churn {
		res := experiments.RunChurnStress(nil, runDur(2*sim.Second))
		res.Print(os.Stdout)
		dump("churn.csv", res.WriteCSV)
	}
	if *all || *ablate {
		experiments.PrintAblations(os.Stdout, runDur(40*sim.Second))
	}
	stopProfiles()
}

// startProfiles arms the requested pprof outputs and returns the function
// that flushes them; callers must invoke it on every exit path that
// should produce profiles. The heap profile runs a GC first so it shows
// live objects, not garbage awaiting collection.
func startProfiles(cpuPath, memPath string) (stop func()) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		cpuFile = f
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
			fmt.Printf("wrote %s\n", cpuPath)
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			f.Close()
			fmt.Printf("wrote %s\n", memPath)
		}
	}
}

// runGenerated is the -gen mode: run seeded scenarios through the
// cross-policy invariant harness, or replay one exact point. Returns the
// process exit code: nonzero when any invariant broke.
func runGenerated(scenario string, seed uint64, seeds int, policy string, scale float64, dur time.Duration, traceCSV string, cpus int, controller string, shards int) int {
	if seeds < 1 {
		fmt.Fprintf(os.Stderr, "rrexp: -seeds must be at least 1, got %d\n", seeds)
		return 2
	}
	families := gen.Families()
	if scenario != "all" {
		families = []string{scenario}
	}
	var policies []string
	if policy != "all" {
		policies = []string{policy}
	}

	if traceCSV != "" {
		return runTraceReplay(traceCSV, policies, dur, cpus)
	}

	lo, hi := uint64(1), uint64(seeds)
	if seed != 0 {
		lo, hi = seed, seed
	}
	opts := gen.CheckOpts{Policies: policies, Scale: scale, Duration: dur, CPUs: cpus,
		Controller: controller, Shards: shards}
	failed := 0
	runs := 0
	for _, family := range families {
		for s := lo; s <= hi; s++ {
			violations, reports, err := gen.Check(family, s, opts)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 2
			}
			for _, r := range reports {
				runs++
				ladder := ""
				if r.FaultEvents > 0 || r.Degradations > 0 || r.Recoveries > 0 {
					ladder = fmt.Sprintf(" faults %-4d degr %-3d recov %-3d", r.FaultEvents, r.Degradations, r.Recoveries)
				}
				if r.OverloadEvents > 0 || r.Sheds > 0 || r.Throttled > 0 {
					ladder += fmt.Sprintf(" rung %s/%s sheds %-3d throttled %-3d",
						r.MaxRung, r.FinalRung, r.Sheds, r.Throttled)
				}
				fmt.Printf("%-9s seed %-4d %-12s threads %-4d exits %-4d kills %-4d admit %d/%d quality %-3d violations %d%s%s\n",
					family, s, r.Policy, r.Threads, r.Exits, r.Kills,
					r.AdmitOK, r.AdmitOK+r.AdmitRejected, r.QualityEvents,
					len(r.Violations)+r.TruncatedViolations, ladder, ctlSummary(controller, shards, r.CtlStats))
			}
			for _, v := range violations {
				failed++
				fmt.Printf("FAIL %s\n", v)
			}
		}
	}
	fmt.Printf("%d runs, %d invariant violations\n", runs, failed)
	if failed > 0 {
		return 1
	}
	return 0
}

// ctlSummary formats the per-shard sample/skip counters for the -gen
// report line. Empty unless a non-default control plane was requested:
// the classic sweep's synthesized single-shard stats would only repeat
// the Samples column.
func ctlSummary(controller string, shards int, stats []realrate.ShardStat) string {
	if (controller == "" || controller == "periodic") && shards <= 1 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, " ctl[")
	for i, st := range stats {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "s%d %d/%d", st.Shard, st.Sampled, st.Skipped)
	}
	b.WriteByte(']')
	return b.String()
}

// runTraceReplay replays a recorded arrival trace CSV through the
// invariant harness under the requested policies.
func runTraceReplay(path string, policies []string, dur time.Duration, cpus int) int {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	trace, err := gen.ParseTraceCSV(f)
	f.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if dur == 0 {
		dur = 500 * time.Millisecond
		if n := len(trace); n > 0 {
			dur = trace[n-1].At + 100*time.Millisecond
		}
	}
	sp := gen.Spec{
		Family:   "trace",
		Seed:     1,
		Duration: dur,
		CPUs:     cpus,
		Taskset:  gen.TasksetSpec{Misc: 1, PinnedHog: true},
		Arrivals: gen.ArrivalSpec{
			Process: gen.Trace, Trace: trace, MeanLife: 50 * time.Millisecond,
		},
	}
	if len(policies) == 0 {
		policies = gen.Policies()
	}
	failed := 0
	for _, pol := range policies {
		res, err := gen.Generate(sp).Run(gen.RunOpts{Policy: pol})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		r := res.Report
		fmt.Printf("trace %-12s arrivals %-4d threads %-4d exits %-4d violations %d\n",
			pol, len(trace), r.Threads, r.Exits, len(r.Violations)+r.TruncatedViolations)
		for _, v := range r.Violations {
			failed++
			fmt.Printf("FAIL %s\n", v)
		}
	}
	if failed > 0 {
		return 1
	}
	return 0
}
