// Command rrtrace runs a configurable producer/consumer pipeline under
// feedback-driven real-rate scheduling and dumps the full time series
// (rates, fill level, allocations) as CSV for plotting. It is the
// free-form companion to cmd/rrexp's fixed paper figures. With
// -actuations it additionally streams every reservation change the
// controller pushes, through the observer seam of the public API.
//
// Example: a 60-second run with a 2 MiB queue, a doubling pulse at 10 s,
// and a competing hog, sampled every 50 ms, with the actuation stream:
//
//	rrtrace -dur 60s -queue 2097152 -pulse-at 10s -pulse-width 5s -hog -sample 50ms -actuations act.csv > trace.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
	"repro/internal/sim"
)

func main() {
	var (
		dur        = flag.Duration("dur", 40*time.Second, "simulated duration")
		queue      = flag.Int64("queue", 1<<20, "queue size in bytes")
		prodProp   = flag.Int("prod-prop", 100, "producer reservation in ppt")
		baseRate   = flag.Float64("rate", 50, "base production rate (bytes/Kcycle)")
		cpb        = flag.Float64("cpb", 40, "consumer cost (cycles/byte)")
		block      = flag.Int64("block", 4096, "consumer dequeue block (bytes)")
		pulseAt    = flag.Duration("pulse-at", 4*time.Second, "first pulse start")
		pulseWidth = flag.Duration("pulse-width", 2*time.Second, "pulse width")
		pulses     = flag.Int("pulses", 3, "number of rising (then falling) pulses")
		gap        = flag.Duration("gap", 2*time.Second, "gap between pulses")
		hog        = flag.Bool("hog", false, "add a competing miscellaneous hog")
		sample     = flag.Duration("sample", 100*time.Millisecond, "sampling interval")
		actuations = flag.String("actuations", "", "file to stream controller actuation events into (CSV)")
	)
	flag.Parse()

	widths := make([]sim.Duration, *pulses)
	for i := range widths {
		widths[i] = sim.FromStd(*pulseWidth)
	}
	cfg := experiments.PipelineConfig{
		QueueSize:             *queue,
		ProducerProportion:    *prodProp,
		BaseRate:              *baseRate,
		ConsumerBlock:         *block,
		ConsumerCyclesPerByte: *cpb,
		PulseStart:            sim.Time(sim.FromStd(*pulseAt)),
		PulseWidths:           widths,
		PulseGap:              sim.FromStd(*gap),
		Duration:              sim.FromStd(*dur),
		SampleEvery:           sim.FromStd(*sample),
		WithHog:               *hog,
	}
	if *actuations != "" {
		f, err := os.Create(*actuations)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		fmt.Fprintln(f, "time_s,thread,proportion_ppt,period_ms")
		// The observer seam: every reservation change the controller pushes,
		// streamed as it happens.
		cfg.OnActuation = func(now sim.Time, thread string, prop int, period sim.Duration) {
			fmt.Fprintf(f, "%.6f,%s,%d,%.3f\n",
				now.Seconds(), thread, prop, period.Seconds()*1e3)
		}
	}
	res := experiments.RunPipeline(cfg)
	if err := res.WriteCSV(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "response=%v settled=%v meanFill=%.3f trackingErr=%.1f%%\n",
		res.ResponseTime, res.Settled, res.MeanFill, res.TrackingError*100)
}
