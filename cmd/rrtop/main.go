// Command rrtop runs a mixed workload on the real-rate stack and prints a
// top(1)-style table each simulated second: every thread's class,
// allocation, period, pressure, CPU share, and — via the observer layer —
// dispatch and actuation counts. It makes the controller's decisions
// visible at a glance: watch the decoder get its share, the hogs split the
// leftover, and the editor get sized from its bursts.
//
// With -faults it adds a sensor thread driven by a custom progress feed,
// arms a small fault schedule against it (a frozen progress signal, then
// dropped actuations) and shows the graceful-degradation ladder at work:
// the RUNG column walks real-rate → fallback → misc and back, and a
// health line tracks the system-wide fault counters.
//
// With -overload it arms the overload governor, fires a storm of
// short-lived low-importance hogs mid-run, and shows the brownout ladder:
// a status line tracks the system rung and the wake→dispatch SLO
// percentiles, and the high-importance resident hog survives while the
// storm is shed around it.
//
// The table renders incrementally: a thread's row is reprinted only when
// it changed since the previous refresh, so a hundred-thread storm prints
// the handful of moving rows plus one "unchanged" summary instead of a
// hundred near-identical lines per second.
package main

import (
	"flag"
	"fmt"
	"time"

	realrate "repro"
)

// activity tallies per-thread scheduling events through the public
// Observer seam, replacing ad-hoc polling of kernel internals.
type activity struct {
	realrate.NopObserver
	dispatches map[*realrate.Thread]uint64
	actuations map[*realrate.Thread]uint64
}

// sensorFeed is the -faults demo's custom progress source: it wiggles
// inside the healthy pressure band every sample, so the only way it goes
// bit-flat is the injected freeze.
type sensorFeed struct{}

func (sensorFeed) Pressure(now time.Duration) float64 {
	return 0.1 + float64((now/time.Millisecond)%13)/100
}
func (sensorFeed) Describe() string { return "sensor feed" }

func newActivity() *activity {
	return &activity{
		dispatches: make(map[*realrate.Thread]uint64),
		actuations: make(map[*realrate.Thread]uint64),
	}
}

func (a *activity) OnDispatch(now time.Duration, th *realrate.Thread, cpu int) {
	if th != nil {
		a.dispatches[th]++
	}
}

func (a *activity) OnActuation(now time.Duration, th *realrate.Thread, prop int, period time.Duration) {
	if th != nil {
		a.actuations[th]++
	}
}

func main() {
	dur := flag.Duration("dur", 15*time.Second, "simulated duration")
	cpus := flag.Int("cpus", 1, "number of simulated CPUs")
	faults := flag.Bool("faults", false, "inject a demo fault schedule against a sensor thread and watch the degradation ladder")
	overload := flag.Bool("overload", false, "arm the overload governor and fire a mid-run storm of short-lived hogs to watch the brownout ladder")
	controller := flag.String("controller", "periodic", "control-plane sampling mode: periodic or event")
	shards := flag.Int("shards", 0, "controller shard count (0 or 1: the classic single sweep)")
	flag.Parse()

	cfg := realrate.Config{CPUs: *cpus}
	switch *controller {
	case "", "periodic":
	case "event":
		cfg.CtlPlane.Mode = realrate.ControllerEventDriven
	default:
		fmt.Printf("rrtop: unknown -controller %q (want periodic or event)\n", *controller)
		return
	}
	cfg.CtlPlane.Shards = *shards
	if *faults {
		cfg.Faults = &realrate.FaultPlan{Seed: 1, Specs: []realrate.FaultSpec{
			{Kind: realrate.FaultFreezeSignal, Target: "sensor", At: 4 * time.Second, For: 3 * time.Second},
			{Kind: realrate.FaultDropActuation, Target: "sensor", At: 9 * time.Second, For: time.Second},
		}}
		cfg.Controller.WatchdogIntervals = 20
		cfg.Controller.WatchdogRecovery = 10
	}
	if *overload {
		// Fast trip/recover so a 15 s run shows the whole ladder cycle.
		// The resident pipeline plus hog legitimately desire ~2.3× the
		// machine (that is squish's normal operating point), so the demo
		// trip band sits above it; the storm blows straight past it.
		cfg.Overload = &realrate.OverloadConfig{GapFactor: 3.5, TripIntervals: 10, RecoverIntervals: 25}
	}
	sys := realrate.NewSystem(cfg)
	act := newActivity()
	sys.Observe(act)

	// A three-stage media pipeline...
	compressed := sys.NewQueue("compressed", 1<<20)
	frames := sys.NewQueue("frames", 1<<20)
	phase := 0
	capture := realrate.ProgramFunc(func(t *realrate.Thread, now time.Duration) realrate.Action {
		phase++
		if phase%2 == 1 {
			return realrate.Compute(400_000)
		}
		return realrate.Produce(compressed, 20_000)
	})
	stage := func(in, out *realrate.Queue, block, cpb int64) realrate.Program {
		p := 0
		return realrate.ProgramFunc(func(t *realrate.Thread, now time.Duration) realrate.Action {
			p++
			switch p % 3 {
			case 1:
				return realrate.Consume(in, block)
			case 2:
				return realrate.Compute(cpb * block)
			default:
				if out == nil {
					return realrate.Compute(1)
				}
				return realrate.Produce(out, block)
			}
		})
	}

	var threads []*realrate.Thread
	mustSpawn := func(name string, prog realrate.Program, opts ...realrate.SpawnOption) *realrate.Thread {
		th, err := sys.Spawn(name, prog, opts...)
		if err != nil {
			panic(err)
		}
		threads = append(threads, th)
		return th
	}

	mustSpawn("capture", capture, realrate.Reserve(100, 10*time.Millisecond))
	mustSpawn("decoder", stage(compressed, frames, 4096, 120),
		realrate.RealRate(0, realrate.ConsumerOf(compressed), realrate.ProducerOf(frames)))
	mustSpawn("renderer", stage(frames, nil, 4096, 15),
		realrate.RealRate(0, realrate.ConsumerOf(frames)))

	// ...a batch hog (important enough to survive a shed storm)...
	mustSpawn("batch", realrate.HogProgram(400_000), realrate.Importance(5))

	// ...and an interactive editor driven by a user.
	tty := sys.NewWaitQueue("tty")
	ephase := 0
	editor := realrate.ProgramFunc(func(t *realrate.Thread, now time.Duration) realrate.Action {
		ephase++
		if ephase%2 == 1 {
			return realrate.Wait(tty)
		}
		return realrate.Compute(1_200_000)
	})
	mustSpawn("editor", editor, realrate.Interactive())
	if *faults {
		// The fault demo's victim: a CPU-burning real-rate thread whose
		// custom progress feed wiggles inside the healthy band, so a frozen
		// signal is unambiguously a fault (not saturation, not idleness).
		mustSpawn("sensor", realrate.HogProgram(400_000),
			realrate.RealRate(10*time.Millisecond, sensorFeed{}))
	}
	uphase := 0
	user := realrate.ProgramFunc(func(t *realrate.Thread, now time.Duration) realrate.Action {
		uphase++
		if uphase%2 == 1 {
			return realrate.Sleep(80 * time.Millisecond)
		}
		tty.WakeOne()
		return realrate.Compute(1000)
	})
	mustSpawn("user", user, realrate.Reserve(10, 5*time.Millisecond))

	throttledSpawns := 0
	if *overload {
		// The storm: between 4 s and 8 s, two fresh low-importance hogs
		// every 50 ms, each living 400 ms. Demand far outruns the machine,
		// the ladder climbs, admissions bounce off the throttle rung, and
		// the shed rung kills storm hogs (never the important batch hog).
		stormN := 0
		hogUntil := func(dieAt time.Duration) realrate.Program {
			return realrate.ProgramFunc(func(t *realrate.Thread, now time.Duration) realrate.Action {
				if now >= dieAt {
					return realrate.Exit()
				}
				return realrate.Compute(300_000)
			})
		}
		sys.Every(50*time.Millisecond, func(now time.Duration) {
			if now < 4*time.Second || now >= 8*time.Second {
				return
			}
			for i := 0; i < 2; i++ {
				name := fmt.Sprintf("storm%d", stormN)
				stormN++
				th, err := sys.Spawn(name, hogUntil(now+400*time.Millisecond))
				if err != nil {
					throttledSpawns++
					continue
				}
				threads = append(threads, th)
			}
		})
	}

	last := make(map[*realrate.Thread]time.Duration)
	lastDisp := make(map[*realrate.Thread]uint64)
	lastIdle := make([]time.Duration, sys.CPUs())
	lastMig := make([]uint64, sys.CPUs())
	lastRow := make(map[*realrate.Thread]string)
	sloLine := func() string {
		rep := sys.SLO()
		if rep.Samples == 0 {
			return ""
		}
		line := fmt.Sprintf("rung %-8s slo wake→dispatch p50 %s p99 %s p999 %s attain %.1f%% of %s (%d samples, %d spawns throttled)",
			sys.Health().OverloadRung, rep.P50, rep.P99, rep.P999,
			100*rep.Attainment, rep.Target, rep.Samples, throttledSpawns)
		// The session dimension only populates when the workload reports
		// end-to-end latencies through ObserveSessionLatency.
		if s := rep.Session; s.Samples > 0 {
			line += fmt.Sprintf("\n             session e2e     p50 %s p99 %s p999 %s attain %.1f%% of %s (%d sessions)",
				s.P50, s.P99, s.P999, 100*s.Attainment, rep.SessionTarget, s.Samples)
		}
		return line
	}
	var lastNow time.Duration
	sys.Every(time.Second, func(now time.Duration) {
		fmt.Printf("\n── t=%-4s  total reserved %d/%d ───────────────────────────────────────\n",
			now, sys.TotalProportion(), realrate.PPT*sys.CPUs())
		// Control-plane line: mode, shard count, and the last interval's
		// sampled-vs-skipped split (the event plane's whole point is the
		// second number dwarfing the first on a settled workload).
		if st := sys.ShardStats(); st != nil {
			var sampled, skipped int
			for _, s := range st {
				sampled += s.LastSampled
				skipped += s.LastSkipped
			}
			fmt.Printf("ctl: %s ×%d  last interval %d sampled / %d skipped\n",
				sys.ControllerModeName(), sys.ControlShards(), sampled, skipped)
		}
		if line := sloLine(); line != "" {
			fmt.Println(line)
		}
		if sys.CPUs() > 1 {
			// Per-CPU columns come from the observer-backed CPU stats, not
			// a second scan over every thread.
			dt := now - lastNow
			fmt.Printf("%-6s %-12s %7s %8s\n", "CPU", "CURRENT", "UTIL%", "MIG/s")
			for _, cs := range sys.CPUStats() {
				curName := "(idle)"
				if cs.Current != nil {
					curName = cs.Current.Name()
				}
				util := 0.0
				if dt > 0 {
					util = 100 * (1 - float64(cs.Idle-lastIdle[cs.CPU])/float64(dt))
				}
				fmt.Printf("cpu%-3d %-12s %6.1f%% %8d\n",
					cs.CPU, curName, util, cs.Migrations-lastMig[cs.CPU])
				lastIdle[cs.CPU] = cs.Idle
				lastMig[cs.CPU] = cs.Migrations
			}
			lastNow = now
		}
		fmt.Printf("%-10s %-20s %6s %8s %9s %7s %7s %5s %6s %-9s\n",
			"THREAD", "CLASS", "ALLOC", "PERIOD", "PRESSURE", "CPU%", "DISP/s", "ACT", "STATE", "RUNG")
		unchanged := 0
		for _, th := range threads {
			share := 100 * (th.CPUTime() - last[th]).Seconds()
			last[th] = th.CPUTime()
			disp := act.dispatches[th] - lastDisp[th]
			lastDisp[th] = act.dispatches[th]
			rung := "-"
			if th.Class() == "real-rate" {
				rung = th.Degraded()
			}
			row := fmt.Sprintf("%-10s %-20s %5dp %8s %+9.3f %6.1f%% %7d %5d %6s %-9s",
				th.Name(), th.Class(), th.Allocation(),
				th.Period().Truncate(time.Millisecond), th.Pressure(), share,
				disp, act.actuations[th], th.State(), rung)
			// Incremental rendering: only moving rows print; a settled
			// thread (most of an exited storm) costs one summary line.
			if row == lastRow[th] {
				unchanged++
				continue
			}
			lastRow[th] = row
			fmt.Println(row)
		}
		if unchanged > 0 {
			fmt.Printf("… %d threads unchanged\n", unchanged)
		}
		if h := sys.Health(); h != (realrate.Health{}) {
			extra := ""
			if h.OverloadRung != "" {
				extra = fmt.Sprintf(", %d shed, %d throttled", h.Sheds, h.Throttled)
			}
			fmt.Printf("health: %d injected, %d signals rejected, %d degraded now, ladder %d down/%d up, actuations %d dropped/%d delayed%s\n",
				h.FaultsInjected, h.SignalsRejected, h.JobsDegraded,
				h.Degradations, h.Recoveries, h.ActuationsDropped, h.ActuationsDelayed, extra)
		}
	})
	sys.Run(*dur)

	st := sys.Stats()
	fmt.Printf("\n%d controller steps, %d actuations, %d dispatches, overhead %v\n",
		st.ControllerSteps, st.Actuations, st.Dispatches, st.SchedOverhead.Truncate(time.Microsecond))
}
