// Command rrtop runs a mixed workload on the real-rate stack and prints a
// top(1)-style table each simulated second: every thread's class,
// allocation, period, pressure, and CPU share. It makes the controller's
// decisions visible at a glance — watch the decoder get its share, the
// hogs split the leftover, and the editor get sized from its bursts.
package main

import (
	"flag"
	"fmt"
	"time"

	realrate "repro"
)

func main() {
	dur := flag.Duration("dur", 15*time.Second, "simulated duration")
	flag.Parse()

	sys := realrate.NewSystem(realrate.Config{})

	// A three-stage media pipeline...
	compressed := sys.NewQueue("compressed", 1<<20)
	frames := sys.NewQueue("frames", 1<<20)
	phase := 0
	capture := realrate.ProgramFunc(func(t *realrate.Thread, now time.Duration) realrate.Action {
		phase++
		if phase%2 == 1 {
			return realrate.Compute(400_000)
		}
		return realrate.Produce(compressed, 20_000)
	})
	stage := func(in, out *realrate.Queue, block, cpb int64) realrate.Program {
		p := 0
		return realrate.ProgramFunc(func(t *realrate.Thread, now time.Duration) realrate.Action {
			p++
			switch p % 3 {
			case 1:
				return realrate.Consume(in, block)
			case 2:
				return realrate.Compute(cpb * block)
			default:
				if out == nil {
					return realrate.Compute(1)
				}
				return realrate.Produce(out, block)
			}
		})
	}

	var threads []*realrate.Thread
	cap0, err := sys.SpawnRealTime("capture", capture, 100, 10*time.Millisecond)
	if err != nil {
		panic(err)
	}
	threads = append(threads, cap0)
	threads = append(threads,
		sys.SpawnRealRate("decoder", stage(compressed, frames, 4096, 120), 0,
			realrate.ConsumerOf(compressed), realrate.ProducerOf(frames)),
		sys.SpawnRealRate("renderer", stage(frames, nil, 4096, 15), 0,
			realrate.ConsumerOf(frames)),
	)

	// ...a batch hog...
	threads = append(threads, sys.SpawnMiscellaneous("batch", realrate.HogProgram(400_000)))

	// ...and an interactive editor driven by a user.
	tty := sys.NewWaitQueue("tty")
	ephase := 0
	editor := realrate.ProgramFunc(func(t *realrate.Thread, now time.Duration) realrate.Action {
		ephase++
		if ephase%2 == 1 {
			return realrate.Wait(tty)
		}
		return realrate.Compute(1_200_000)
	})
	threads = append(threads, sys.SpawnInteractive("editor", editor))
	uphase := 0
	user := realrate.ProgramFunc(func(t *realrate.Thread, now time.Duration) realrate.Action {
		uphase++
		if uphase%2 == 1 {
			return realrate.Sleep(80 * time.Millisecond)
		}
		tty.WakeOne()
		return realrate.Compute(1000)
	})
	if u, err := sys.SpawnRealTime("user", user, 10, 5*time.Millisecond); err == nil {
		threads = append(threads, u)
	}

	last := make(map[*realrate.Thread]time.Duration)
	sys.Every(time.Second, func(now time.Duration) {
		fmt.Printf("\n── t=%-4s  total reserved %d/1000 ───────────────────────────────\n",
			now, sys.TotalProportion())
		fmt.Printf("%-10s %-20s %6s %8s %9s %7s %6s\n",
			"THREAD", "CLASS", "ALLOC", "PERIOD", "PRESSURE", "CPU%", "STATE")
		for _, th := range threads {
			share := 100 * (th.CPUTime() - last[th]).Seconds()
			last[th] = th.CPUTime()
			fmt.Printf("%-10s %-20s %5dp %8s %+9.3f %6.1f%% %6s\n",
				th.Name(), th.Class(), th.Allocation(),
				th.Period().Truncate(time.Millisecond), th.Pressure(), share, th.State())
		}
	})
	sys.Run(*dur)

	st := sys.Stats()
	fmt.Printf("\n%d controller steps, %d actuations, %d dispatches, overhead %v\n",
		st.ControllerSteps, st.Actuations, st.Dispatches, st.SchedOverhead.Truncate(time.Microsecond))
}
